package experiments

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/load"
	"matrix/internal/sim"
)

// poolTestConfig is a fast hotspot run for pool tests, tuned so splits,
// reclaims, boundary handoffs AND queue saturation all occur: with the
// service rate this low, processing order feeds back into state, so any
// nondeterministic ordering anywhere in the pipeline diverges the
// fingerprint within seconds (this exact shape caught the grid-query
// map-iteration bug).
func poolTestConfig(seed int64) sim.Config {
	return sim.Config{
		Profile:            game.Bzflag(),
		World:              World,
		Seed:               seed,
		DurationSeconds:    25,
		MaxServers:         4,
		BasePopulation:     30,
		ServiceRatePerTick: 60,
		Script: game.Script{
			{At: 5, Kind: game.EventJoin, Count: 150, Center: geom.Pt(750, 250), Spread: 80, Tag: "hot"},
			{At: 15, Kind: game.EventLeave, Count: 150, Tag: "hot"},
		},
		LoadPolicy: load.Config{
			OverloadClients:  60,
			UnderloadClients: 30,
			OverloadQueue:    400,
			SplitCooldown:    2 * time.Second,
			ReclaimDwell:     3 * time.Second,
		},
	}
}

// TestRunnerDeterminism is the sweep engine's core contract: a fixed seed
// produces a byte-identical Result whether the run executes serially via
// Run() or as one of many runs on the worker pool.
func TestRunnerDeterminism(t *testing.T) {
	t.Parallel()
	serial, err := sim.New(poolTestConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := serial.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Fingerprint()

	// Eight identical jobs race each other on an eight-worker pool; every
	// result must still match the serial reference byte for byte.
	cfgs := make([]sim.Config, 8)
	for i := range cfgs {
		cfgs[i] = poolTestConfig(7)
	}
	results, err := (Runner{Workers: 8}).RunConfigs(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if got := res.Fingerprint(); got != want {
			t.Errorf("pooled run %d diverged from serial run:\n--- pooled\n%.400s\n--- serial\n%.400s", i, got, want)
		}
	}
}

// TestRunnerOrderPreserved submits jobs whose wall-clock ordering is the
// reverse of their submission ordering (the first job is by far the
// slowest) and checks the aggregator still emits them in submission order.
func TestRunnerOrderPreserved(t *testing.T) {
	t.Parallel()
	var jobs []Job
	for i := 0; i < 6; i++ {
		cfg := poolTestConfig(int64(i))
		cfg.Script = nil
		cfg.BasePopulation = 20
		cfg.DurationSeconds = 60 - 9*float64(i) // 60s .. 15s
		jobs = append(jobs, Job{Name: fmt.Sprintf("job-%d", i), Config: cfg})
	}
	var got []string
	for o := range (Runner{Workers: 4}).Stream(context.Background(), jobs) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.Name, o.Err)
		}
		got = append(got, o.Name)
	}
	for i, name := range got {
		if want := fmt.Sprintf("job-%d", i); name != want {
			t.Fatalf("stream order %v, want submission order", got)
		}
	}
	if len(got) != len(jobs) {
		t.Fatalf("got %d outputs, want %d", len(got), len(jobs))
	}
}

// TestRunnerCancelMidRun cancels a sweep of effectively unbounded runs and
// requires prompt return: workers poll the context between simulation
// steps (the point of the steppable primitives), not between runs.
func TestRunnerCancelMidRun(t *testing.T) {
	t.Parallel()
	var jobs []Job
	for i := 0; i < 4; i++ {
		cfg := poolTestConfig(int64(i))
		cfg.Script = nil
		cfg.DurationSeconds = 1e6 // ~115 simulated days: never finishes honestly
		jobs = append(jobs, Job{Name: fmt.Sprintf("long-%d", i), Config: cfg})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	outs, err := (Runner{Workers: 2}).Run(ctx, jobs)
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(outs) != len(jobs) {
		t.Fatalf("got %d outputs, want %d (cancelled jobs must still report)", len(outs), len(jobs))
	}
	for _, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", o.Name, o.Err)
		}
	}
}

// TestRunnerPoolRace floods an 8-worker pool with more jobs than workers;
// run under -race (CI does) it verifies the pool, the per-run state and
// the order-preserving aggregator share nothing hot.
func TestRunnerPoolRace(t *testing.T) {
	t.Parallel()
	var jobs []Job
	for i := 0; i < 12; i++ {
		cfg := poolTestConfig(int64(100 + i))
		cfg.DurationSeconds = 10
		jobs = append(jobs, Job{Name: fmt.Sprintf("race-%d", i), Config: cfg})
	}
	outs, err := (Runner{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if o.Result == nil {
			t.Fatalf("job %d returned no result", i)
		}
		if o.Name != jobs[i].Name {
			t.Fatalf("output %d is %q, want %q", i, o.Name, jobs[i].Name)
		}
	}
}

// TestRunnerJobError checks that a broken config surfaces as that job's
// error without poisoning the rest of the sweep.
func TestRunnerJobError(t *testing.T) {
	t.Parallel()
	good := poolTestConfig(1)
	good.DurationSeconds = 5
	bad := good
	bad.DurationSeconds = -1
	outs, err := (Runner{Workers: 2}).Run(context.Background(), []Job{
		{Name: "good", Config: good},
		{Name: "bad", Config: bad},
		{Name: "good2", Config: good},
	})
	if err == nil {
		t.Fatal("sweep with a broken config must return an error")
	}
	if outs[0].Err != nil || outs[0].Result == nil {
		t.Errorf("good job failed: %v", outs[0].Err)
	}
	if outs[1].Err == nil {
		t.Error("bad job must carry its error")
	}
	if outs[2].Err != nil || outs[2].Result == nil {
		t.Errorf("good2 job failed: %v", outs[2].Err)
	}
}

// TestScenarioTable checks the table's integrity: unique names, lookups,
// and that every scenario's config (including its generated script)
// passes sim validation.
func TestScenarioTable(t *testing.T) {
	t.Parallel()
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Title == "" || sc.Config == nil {
			t.Fatalf("incomplete scenario: %+v", sc)
		}
		if seen[sc.Name] {
			t.Fatalf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
		got, ok := ScenarioByName(sc.Name)
		if !ok || got.Name != sc.Name {
			t.Fatalf("ScenarioByName(%q) failed", sc.Name)
		}
		if _, err := sim.New(sc.Config(3)); err != nil {
			t.Errorf("scenario %q config invalid: %v", sc.Name, err)
		}
	}
	if len(seen) < 4 {
		t.Errorf("scenario table has %d entries, want >= 4", len(seen))
	}
	if _, ok := ScenarioByName("no-such-scenario"); ok {
		t.Error("lookup of unknown scenario must fail")
	}
	if _, err := RunScenarios(context.Background(), Runner{}, 1, "no-such-scenario"); err == nil {
		t.Error("RunScenarios with unknown name must fail")
	}
}

// TestSheddingScenarioDeterministic runs the shedding scenario — the
// admission chain under flash-crowd churn — serially and on an 8-worker
// tick engine: the fingerprints must match byte for byte, and both the
// rate limiter and the shed queue must actually have fired (a vacuously
// identical run proves nothing). The fast version of this check lives in
// internal/sim; this one exercises the real scenario-table entry.
func TestSheddingScenarioDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full 110s shedding scenario twice")
	}
	t.Parallel()
	run := func(workers int) *sim.Result {
		cfg := SheddingConfig(1)
		cfg.SimWorkers = workers
		s, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	if serial.RateLimited == 0 {
		t.Error("shedding scenario never rate-limited (limiter mis-tuned?)")
	}
	if serial.AdmissionShed == 0 {
		t.Error("shedding scenario never shed (queue threshold mis-tuned?)")
	}
	if got := run(8).Fingerprint(); got != serial.Fingerprint() {
		t.Errorf("shedding fingerprint diverges between serial and SimWorkers=8:\n--- serial\n%.400s\n--- workers=8\n%.400s", serial.Fingerprint(), got)
	}
}

// TestScenarioSweep runs the three new stress scenarios end to end on the
// pool and checks each one exercises the machinery it was written for.
func TestScenarioSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep simulates three 150s+ stress scenarios")
	}
	t.Parallel()
	r, err := RunScenarios(context.Background(), Runner{}, 1, "flashcrowd", "migration", "reclaimstress")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flashcrowd", "migration", "reclaimstress"} {
		if r.Numbers[name+"/peak_servers"] < 2 {
			t.Errorf("%s: never split (peak=%v)", name, r.Numbers[name+"/peak_servers"])
		}
		if r.Numbers[name+"/splits"] < 1 {
			t.Errorf("%s: no splits recorded", name)
		}
	}
	// Migration storms drag crowds across boundaries: clients must switch.
	if r.Numbers["migration/redirects"] == 0 {
		t.Error("migration storm produced no redirects")
	}
	// Reclaim stress must come back down between surges.
	if r.Numbers["reclaimstress/reclaims"] < 1 {
		t.Error("reclaim stress never reclaimed")
	}
}
