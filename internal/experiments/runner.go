// The sweep engine: every experiment in this package is a set of
// independent, deterministic sim.Config runs, so the suite parallelizes
// perfectly. Runner fans configurations out over a bounded worker pool,
// streams results back in submission order, and cancels mid-run via
// context (each worker drives the Sim step primitives and polls the
// context between ticks rather than only between runs).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"matrix/internal/sim"
)

// Job names one simulation configuration inside a sweep.
type Job struct {
	// Name labels the run in results and errors.
	Name string
	// Config is the simulation to run.
	Config sim.Config
}

// RunOutput is one job's outcome. Exactly one of Result/Err is set.
type RunOutput struct {
	// Name echoes the job name.
	Name string
	// Result is the completed run's result.
	Result *sim.Result
	// Err is the failure (sim error, or the context's error for runs
	// cancelled or never started).
	Err error
}

// Runner executes sweeps of independent simulations on a worker pool.
// The zero value is ready to use.
type Runner struct {
	// Workers bounds the pool; <= 0 means runtime.GOMAXPROCS(0).
	Workers int
	// SimWorkers bounds each simulation's intra-sim tick worker pool
	// (sim.Config.SimWorkers) for jobs that do not set one themselves;
	// <= 1 steps each tick serially. Fingerprints are identical for any
	// value, so a sweep may combine both pools — across-sim workers for
	// many small runs, intra-sim workers for a few large ones.
	SimWorkers int
	// CancelEveryTicks is how many simulation steps a worker advances
	// between context polls; <= 0 means 50 (5 simulated seconds at the
	// default 0.1s tick).
	CancelEveryTicks int
	// Policy names the decision policy (internal/policy) applied to jobs
	// that do not set sim.Config.Policy themselves; empty keeps each job's
	// own choice (usually the paper policy).
	Policy string
}

func (r Runner) workers() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (r Runner) cancelEvery() int {
	if r.CancelEveryTicks > 0 {
		return r.CancelEveryTicks
	}
	return 50
}

// runOne drives a single simulation with step primitives, polling ctx so a
// sweep cancels mid-run instead of only between runs.
func (r Runner) runOne(ctx context.Context, cfg sim.Config) (*sim.Result, error) {
	if cfg.SimWorkers == 0 {
		cfg.SimWorkers = r.SimWorkers
	}
	if cfg.Policy == "" {
		cfg.Policy = r.Policy
	}
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	every := r.cancelEvery()
	for n := 0; !s.Done(); n++ {
		if n%every == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// Stream runs the jobs on the pool and emits one RunOutput per job, in
// submission order (an order-preserving aggregator holds back runs that
// finish ahead of an earlier, slower one). The channel closes after the
// last job; on cancellation every remaining job is still emitted, with
// Err set to ctx.Err().
func (r Runner) Stream(ctx context.Context, jobs []Job) <-chan RunOutput {
	out := make(chan RunOutput, len(jobs))
	type indexed struct {
		idx int
		res RunOutput
	}
	done := make(chan indexed, len(jobs))
	work := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				job := jobs[idx]
				o := RunOutput{Name: job.Name}
				if err := ctx.Err(); err != nil {
					o.Err = err
				} else if res, err := r.runOne(ctx, job.Config); err != nil {
					o.Err = fmt.Errorf("run %q: %w", job.Name, err)
				} else {
					o.Result = res
				}
				done <- indexed{idx, o}
			}
		}()
	}
	go func() {
		// Feed indices; ctx cancellation is observed inside the workers, so
		// draining the queue stays cheap (each job returns immediately).
		for i := range jobs {
			work <- i
		}
		close(work)
		wg.Wait()
		close(done)
	}()
	go func() {
		defer close(out)
		pending := make(map[int]RunOutput, len(jobs))
		next := 0
		for d := range done {
			pending[d.idx] = d.res
			for {
				o, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				next++
				out <- o
			}
		}
	}()
	return out
}

// Run executes the jobs and collects the outputs in submission order. The
// returned error is the first job error (including cancellation); the
// slice always has one entry per job so callers can inspect partial
// sweeps.
func (r Runner) Run(ctx context.Context, jobs []Job) ([]RunOutput, error) {
	outs := make([]RunOutput, 0, len(jobs))
	var firstErr error
	for o := range r.Stream(ctx, jobs) {
		if o.Err != nil && firstErr == nil {
			firstErr = o.Err
		}
		outs = append(outs, o)
	}
	return outs, firstErr
}

// RunConfigs is the common case: run the configurations concurrently and
// return their results in order, failing on the first error.
func (r Runner) RunConfigs(ctx context.Context, cfgs []sim.Config) ([]*sim.Result, error) {
	jobs := make([]Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = Job{Name: fmt.Sprintf("cfg-%d", i), Config: cfg}
	}
	outs, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	results := make([]*sim.Result, len(outs))
	for i, o := range outs {
		results[i] = o.Result
	}
	return results, nil
}
