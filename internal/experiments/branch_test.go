package experiments

import (
	"context"
	"testing"

	"matrix/internal/sim"
)

// TestBranchedSweepMatchesCold is the branching acceptance gate: for the
// full scenario table, the branched sweep (shared warmups, snapshot,
// restored tails) must produce results byte-identical to cold starts.
func TestBranchedSweepMatchesCold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full scenario table twice")
	}
	t.Parallel()
	ctx := context.Background()
	r := Runner{}
	names := ScenarioNames()

	scs, err := scenariosByName(names)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, len(scs))
	for i, sc := range scs {
		jobs[i] = Job{Name: sc.Name, Config: sc.Config(5)}
	}
	coldOuts, err := r.Run(ctx, jobs)
	if err != nil {
		t.Fatal(err)
	}
	branchedOuts, err := BranchedOutputs(ctx, r, 5, names...)
	if err != nil {
		t.Fatal(err)
	}
	if len(coldOuts) != len(branchedOuts) {
		t.Fatalf("cold sweep has %d outputs, branched %d", len(coldOuts), len(branchedOuts))
	}
	for i := range coldOuts {
		if coldOuts[i].Name != branchedOuts[i].Name {
			t.Fatalf("output %d: name %q vs %q", i, coldOuts[i].Name, branchedOuts[i].Name)
		}
		cold, branched := coldOuts[i].Result.Fingerprint(), branchedOuts[i].Result.Fingerprint()
		if cold != branched {
			t.Errorf("scenario %q: branched sweep diverged from cold start", coldOuts[i].Name)
		}
	}
}

// TestFamilyValidation pins the branching soundness checks.
func TestFamilyValidation(t *testing.T) {
	t.Parallel()
	base := SurgeDrainConfig(1)
	other := SurgeJitterConfig(1)
	if err := validateFamily("surge", SurgeWarmupSeconds,
		[]sim.Config{base, other},
		[]float64{SurgeWarmupSeconds, SurgeWarmupSeconds}); err != nil {
		t.Errorf("surge family should validate: %v", err)
	}
	// Diverging base config (beyond script/duration) is rejected.
	bad := other
	bad.ServiceRatePerTick++
	if err := validateFamily("surge", SurgeWarmupSeconds,
		[]sim.Config{base, bad},
		[]float64{SurgeWarmupSeconds, SurgeWarmupSeconds}); err == nil {
		t.Error("family with differing configs must fail validation")
	}
	// Diverging warmup prefix is rejected.
	bad2 := other
	bad2.Script = append(sim.Config{}.Script, bad2.Script...)
	bad2.Script[0].Count++
	if err := validateFamily("surge", SurgeWarmupSeconds,
		[]sim.Config{base, bad2},
		[]float64{SurgeWarmupSeconds, SurgeWarmupSeconds}); err == nil {
		t.Error("family with differing prefixes must fail validation")
	}
	// Disagreeing warmup points are rejected.
	if err := validateFamily("surge", SurgeWarmupSeconds,
		[]sim.Config{base, other},
		[]float64{SurgeWarmupSeconds, SurgeWarmupSeconds + 5}); err == nil {
		t.Error("family with differing warmup points must fail validation")
	}
}

// TestRecoveryScenario drives the E7 workload once and checks the recovery
// machinery actually fired: one restart, a rejoin storm, measured gaps.
func TestRecoveryScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates a 110s crash-recovery scenario")
	}
	t.Parallel()
	s, err := sim.New(RecoveryConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Errorf("restarts = %d, want 2 (both victims)", res.Restarts)
	}
	if res.RecoveryRejoins == 0 {
		t.Error("no clients rejoined after the restart")
	}
	if res.RecoveryGap.Count() == 0 {
		t.Error("no recovery gaps measured")
	}
	if res.RecoveryGap.Count() > int(res.RecoveryRejoins) {
		t.Errorf("gap samples %d exceed rejoins %d", res.RecoveryGap.Count(), res.RecoveryRejoins)
	}
	if res.PeakServers < 2 {
		t.Errorf("hotspot never split (peak=%d)", res.PeakServers)
	}
}
