package experiments

import (
	"context"

	"matrix/internal/game"
	"matrix/internal/netem"
)

// E6 — static partitioning vs adaptive Matrix under degraded networks.
//
// The paper's evaluation ran on a clean testbed; its claim that adaptive
// repartitioning preserves player experience where static partitioning
// degrades is only half-tested there. This experiment reruns the E2
// hotspot comparison under emulated impairment (clean, bursty loss, and a
// laggy jittery WAN) so the robustness half of the claim is measurable:
// does adaptivity still win when the network itself is misbehaving — or do
// the extra redirects and peer forwards it relies on make it *more*
// fragile than the static baseline?

// degradedCondition is one network regime of the E6 sweep.
type degradedCondition struct {
	name string
	link netem.LinkConfig
}

// degradedConditions lists the E6 network regimes, mildest first.
func degradedConditions() []degradedCondition {
	return []degradedCondition{
		{name: "clean", link: netem.LinkConfig{}},
		{name: "lossy", link: netem.LinkConfig{
			Loss: 0.02, BurstLoss: 0.30, BurstEnter: 0.02, BurstExit: 0.25,
		}},
		{name: "laggy", link: netem.LinkConfig{
			DelayMs: 100, JitterMs: 250, Loss: 0.01,
		}},
	}
}

// RunDegradedStaticVsMatrix executes E6: the bzflag hotspot comparison
// from E2 across the degraded-network conditions, static and adaptive side
// by side. All runs are independent and execute concurrently on the sweep
// engine.
func RunDegradedStaticVsMatrix(ctx context.Context, r Runner, seed int64) (*Report, error) {
	conditions := degradedConditions()
	var jobs []Job
	for _, cond := range conditions {
		staticCfg, matrixCfg, err := StaticVsMatrixConfig(game.Bzflag(), 4, 10, seed)
		if err != nil {
			return nil, err
		}
		staticCfg.Netem = netem.Config{Link: cond.link}
		matrixCfg.Netem = netem.Config{Link: cond.link}
		jobs = append(jobs,
			Job{Name: cond.name + "/static", Config: staticCfg},
			Job{Name: cond.name + "/matrix", Config: matrixCfg},
		)
	}
	outs, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "E6", Title: "static vs Matrix under degraded networks (bzflag hotspot)", Numbers: map[string]float64{}}
	rep.addf("%-8s %-8s %8s %10s %10s %10s %10s %12s %12s", "network", "mode", "servers", "dropped", "lost", "severed", "delayed", "delivered", "p95 lat(ms)")
	for i, o := range outs {
		res := o.Result
		cond := conditions[i/2]
		mode := "static"
		if i%2 == 1 {
			mode = "matrix"
		}
		rep.addf("%-8s %-8s %8d %10d %10d %10d %10d %12d %12.1f",
			cond.name, mode, res.PeakServers, res.DroppedPackets,
			res.NetemLost, res.NetemSevered, res.NetemDelayed,
			res.DeliveredUpdates, res.Latency.Quantile(0.95))
		rep.Numbers[o.Name+"/dropped"] = float64(res.DroppedPackets)
		rep.Numbers[o.Name+"/netem_lost"] = float64(res.NetemLost)
		rep.Numbers[o.Name+"/delivered"] = float64(res.DeliveredUpdates)
		rep.Numbers[o.Name+"/p95"] = res.Latency.Quantile(0.95)
		rep.Numbers[o.Name+"/peak_servers"] = float64(res.PeakServers)
	}
	return rep, nil
}
