package experiments

import (
	"context"
	"fmt"

	"matrix/internal/game"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/netem"
	"matrix/internal/sim"
)

// Scenario is one named workload in the shared scenario table. The same
// table backs cmd/matrix-bench (-exp scenarios, -scenario), the
// experiments tests and the repository benchmarks, so a scenario added
// here is immediately runnable everywhere.
type Scenario struct {
	// Name is the stable identifier used on the command line.
	Name string
	// Title is the one-line description printed in reports.
	Title string
	// Config builds the scenario's simulation for a seed.
	Config func(seed int64) sim.Config
}

// scenarioTable lists every named workload, paper figures first.
var scenarioTable = []Scenario{
	{
		Name:   "figure2",
		Title:  "paper Figure 2 — 600-client hotspot, appears twice, drains gradually",
		Config: Figure2Config,
	},
	{
		Name:   "flashcrowd",
		Title:  "flash-crowd churn — 4 sudden 400-client crowds, each gone within ~15s",
		Config: FlashCrowdConfig,
	},
	{
		Name:   "migration",
		Title:  "migration storm — 3 hotspots of 200 clients hopping across the map",
		Config: MigrationConfig,
	},
	{
		Name:   "reclaimstress",
		Title:  "reclaim stress — 5 surge/drain cycles thrashing split+reclaim at one point",
		Config: ReclaimStressConfig,
	},
	{
		Name:   "lossy",
		Title:  "bursty loss — flash-crowd churn with 2% i.i.d. + Gilbert–Elliott burst loss on every link",
		Config: LossyConfig,
	},
	{
		Name:   "jittery",
		Title:  "jitter storm — hotspot under 100ms±300ms reordering jitter mid-run, calm before reclaim",
		Config: JitteryConfig,
	},
	{
		Name:   "partition",
		Title:  "backbone partition — split child cut off the inter-server network for 25s, then healed",
		Config: PartitionConfig,
	},
	{
		Name:   "crashstorm",
		Title:  "crash storm — rolling crash/recover of split children under two sustained hotspots",
		Config: CrashStormConfig,
	},
}

// Scenarios returns the scenario table in stable order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarioTable))
	copy(out, scenarioTable)
	return out
}

// ScenarioNames returns the table's names in stable order.
func ScenarioNames() []string {
	names := make([]string, len(scenarioTable))
	for i, sc := range scenarioTable {
		names[i] = sc.Name
	}
	return names
}

// ScenarioByName looks a scenario up by its stable name.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range scenarioTable {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// scenarioBase is the common shape of the stress scenarios: the Figure 2
// world and fleet with capacity for ~600 clients per server.
func scenarioBase(seed int64) sim.Config {
	return sim.Config{
		Profile:            game.Bzflag(),
		World:              World,
		Seed:               seed,
		MaxServers:         8,
		ServiceRatePerTick: 300,
		BasePopulation:     100,
		LoadPolicy:         load.Config{OverloadQueue: 3000},
		SampleEverySeconds: 5,
	}
}

// FlashCrowdConfig builds the flash-crowd churn scenario: crowds large
// enough to force a split arrive faster than they drain, at random spots.
func FlashCrowdConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.FlashCrowdScript(World, 4, 400, 22, 10, seed)
	return cfg
}

// MigrationConfig builds the multi-hotspot migration storm: three crowds
// that keep relocating, so load never settles where the last split put it.
func MigrationConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.MigrationScript(World, 3, 3, 200, 25, seed)
	return cfg
}

// ReclaimStressConfig builds the split/reclaim thrash scenario: one point
// surging over and draining under the thresholds, cycle after cycle.
func ReclaimStressConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 115
	cfg.Script = game.ReclaimStressScript(World, 5, 400, 10, 10)
	return cfg
}

// LossyConfig builds the bursty-loss scenario: the flash-crowd churn
// workload with every link losing 2% of data packets i.i.d. plus
// Gilbert–Elliott bursts (30% loss while a burst lasts). Session control
// stays reliable, so the cluster keeps reshaping itself while gameplay
// deliveries and echoes go missing.
func LossyConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.FlashCrowdScript(World, 4, 400, 22, 10, seed)
	cfg.Netem = netem.Config{Link: netem.LinkConfig{
		Loss:       0.02,
		BurstLoss:  0.30,
		BurstEnter: 0.02,
		BurstExit:  0.25,
	}}
	return cfg
}

// JitteryConfig builds the jitter-storm scenario: a split-forcing hotspot
// played over a 40ms±100ms WAN that degrades to 100ms±300ms mid-run —
// jitter well past the 100ms tick, so deliveries reorder across ticks —
// and calms back down before the crowd drains.
func JitteryConfig(seed int64) sim.Config {
	baseline := netem.LinkConfig{DelayMs: 40, JitterMs: 100}
	storm := netem.LinkConfig{DelayMs: 100, JitterMs: 300}
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.JitterStormScript(World, 500, 40, 75, baseline, storm)
	cfg.Netem = netem.Config{Link: baseline}
	return cfg
}

// PartitionConfig builds the backbone-partition scenario: a hotspot forces
// a split, then the child server is cut off the inter-server network from
// t=40 to t=65 while its clients keep playing. Peer forwarding across the
// boundary blackholes; the severed counter measures the consistency-set
// traffic the partition cost.
func PartitionConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 100
	cfg.Script = game.PartitionScript(World, 600, 40, 65)
	return cfg
}

// CrashStormConfig builds the crash-storm scenario: two hotspots split the
// fleet out, then servers 2 and 3 crash for 12s each in a rolling wave
// (server 2 twice). Crashed servers freeze with their state and every
// link touching them blackholes; recovery drains the backlog.
func CrashStormConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.CrashStormScript(World, 450, 45, 18, 12,
		[]id.ServerID{2, 3, 2})
	return cfg
}

// RunScenarios executes the named scenarios (all of them when names is
// empty) concurrently on the sweep engine and reports each one's headline
// numbers. Numbers are keyed "<scenario>/<metric>".
func RunScenarios(ctx context.Context, r Runner, seed int64, names ...string) (*Report, error) {
	if len(names) == 0 {
		names = ScenarioNames()
	}
	jobs := make([]Job, 0, len(names))
	for _, name := range names {
		sc, ok := ScenarioByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario %q (known: %v)", name, ScenarioNames())
		}
		jobs = append(jobs, Job{Name: sc.Name, Config: sc.Config(seed)})
	}
	outs, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "SWEEP", Title: "scenario sweep", Numbers: map[string]float64{}}
	rep.addf("%-14s %6s %6s %7s %9s %10s %9s %9s %9s %9s %12s", "scenario", "peak", "final", "splits", "reclaims", "redirects", "dropped", "lost", "severed", "delayed", "p95 lat(ms)")
	for _, o := range outs {
		res := o.Result
		splits, reclaims := countEvents(res)
		rep.addf("%-14s %6d %6d %7d %9d %10d %9d %9d %9d %9d %12.1f",
			o.Name, res.PeakServers, res.FinalServers, splits, reclaims,
			res.Redirects, res.DroppedPackets,
			res.NetemLost, res.NetemSevered, res.NetemDelayed,
			res.Latency.Quantile(0.95))
		rep.Numbers[o.Name+"/peak_servers"] = float64(res.PeakServers)
		rep.Numbers[o.Name+"/final_servers"] = float64(res.FinalServers)
		rep.Numbers[o.Name+"/splits"] = float64(splits)
		rep.Numbers[o.Name+"/reclaims"] = float64(reclaims)
		rep.Numbers[o.Name+"/redirects"] = float64(res.Redirects)
		rep.Numbers[o.Name+"/dropped"] = float64(res.DroppedPackets)
		rep.Numbers[o.Name+"/netem_lost"] = float64(res.NetemLost)
		rep.Numbers[o.Name+"/netem_severed"] = float64(res.NetemSevered)
		rep.Numbers[o.Name+"/netem_delayed"] = float64(res.NetemDelayed)
		rep.Numbers[o.Name+"/p95_ms"] = res.Latency.Quantile(0.95)
	}
	return rep, nil
}
