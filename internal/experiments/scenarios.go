package experiments

import (
	"context"
	"fmt"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/netem"
	"matrix/internal/sim"
)

// Scenario is one named workload in the shared scenario table. The same
// table backs cmd/matrix-bench (-exp scenarios, -scenario), the
// experiments tests and the repository benchmarks, so a scenario added
// here is immediately runnable everywhere.
type Scenario struct {
	// Name is the stable identifier used on the command line.
	Name string
	// Title is the one-line description printed in reports.
	Title string
	// Config builds the scenario's simulation for a seed.
	Config func(seed int64) sim.Config
	// Family groups scenarios that share a deterministic warmup prefix:
	// identical configs (apart from script tail and duration) whose script
	// events before WarmupSeconds match exactly. RunScenariosBranched runs
	// one warmup per family and seed, snapshots it, and fans the tails out
	// from the snapshot. Empty means the scenario always cold-starts.
	Family string
	// WarmupSeconds is the family's branch point; every family member must
	// declare the same value.
	WarmupSeconds float64
}

// scenarioTable lists every named workload, paper figures first.
var scenarioTable = []Scenario{
	{
		Name:   "figure2",
		Title:  "paper Figure 2 — 600-client hotspot, appears twice, drains gradually",
		Config: Figure2Config,
	},
	{
		Name:   "flashcrowd",
		Title:  "flash-crowd churn — 4 sudden 400-client crowds, each gone within ~15s",
		Config: FlashCrowdConfig,
	},
	{
		Name:   "migration",
		Title:  "migration storm — 3 hotspots of 200 clients hopping across the map",
		Config: MigrationConfig,
	},
	{
		Name:   "reclaimstress",
		Title:  "reclaim stress — 5 surge/drain cycles thrashing split+reclaim at one point",
		Config: ReclaimStressConfig,
	},
	{
		Name:   "shedding",
		Title:  "overload shedding — flash-crowd churn with per-client rate limiting + queue admission",
		Config: SheddingConfig,
	},
	{
		Name:   "lossy",
		Title:  "bursty loss — flash-crowd churn with 2% i.i.d. + Gilbert–Elliott burst loss on every link",
		Config: LossyConfig,
	},
	{
		Name:   "jittery",
		Title:  "jitter storm — hotspot under 100ms±300ms reordering jitter mid-run, calm before reclaim",
		Config: JitteryConfig,
	},
	{
		Name:   "partition",
		Title:  "backbone partition — split child cut off the inter-server network for 25s, then healed",
		Config: PartitionConfig,
	},
	{
		Name:   "crashstorm",
		Title:  "crash storm — rolling crash/recover of split children under two sustained hotspots",
		Config: CrashStormConfig,
	},
	{
		Name:   "recovery",
		Title:  "crash recovery — server loses state at t=55, restarts from its last 10s checkpoint",
		Config: RecoveryConfig,
	},
	{
		Name:          "surge-drain",
		Title:         "surge family — shared 70s split warmup, then the crowd drains (reclaim tail)",
		Config:        SurgeDrainConfig,
		Family:        "surge",
		WarmupSeconds: SurgeWarmupSeconds,
	},
	{
		Name:          "surge-secondwave",
		Title:         "surge family — shared 70s split warmup, then a second 400-client crowd lands west",
		Config:        SurgeSecondWaveConfig,
		Family:        "surge",
		WarmupSeconds: SurgeWarmupSeconds,
	},
	{
		Name:          "surge-jitter",
		Title:         "surge family — shared 70s split warmup, then 80ms±250ms jitter until t=100",
		Config:        SurgeJitterConfig,
		Family:        "surge",
		WarmupSeconds: SurgeWarmupSeconds,
	},
	{
		Name:          "surge-crash",
		Title:         "surge family — shared 70s split warmup, then server-2 loses state and recovers from checkpoint",
		Config:        SurgeCrashConfig,
		Family:        "surge",
		WarmupSeconds: SurgeWarmupSeconds,
	},
}

// Scenarios returns the scenario table in stable order.
func Scenarios() []Scenario {
	out := make([]Scenario, len(scenarioTable))
	copy(out, scenarioTable)
	return out
}

// ScenarioNames returns the table's names in stable order.
func ScenarioNames() []string {
	names := make([]string, len(scenarioTable))
	for i, sc := range scenarioTable {
		names[i] = sc.Name
	}
	return names
}

// ScenarioByName looks a scenario up by its stable name.
func ScenarioByName(name string) (Scenario, bool) {
	for _, sc := range scenarioTable {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// scenarioBase is the common shape of the stress scenarios: the Figure 2
// world and fleet with capacity for ~600 clients per server.
func scenarioBase(seed int64) sim.Config {
	return sim.Config{
		Profile:            game.Bzflag(),
		World:              World,
		Seed:               seed,
		MaxServers:         8,
		ServiceRatePerTick: 300,
		BasePopulation:     100,
		LoadPolicy:         load.Config{OverloadQueue: 3000},
		SampleEverySeconds: 5,
	}
}

// FlashCrowdConfig builds the flash-crowd churn scenario: crowds large
// enough to force a split arrive faster than they drain, at random spots.
func FlashCrowdConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.FlashCrowdScript(World, 4, 400, 22, 10, seed)
	return cfg
}

// SheddingConfig builds the overload-shedding scenario: the flash-crowd
// churn workload with the admission chain active. Each client may send 4
// updates/sec sustained (burst 8) against bzflag's 5/sec offered rate, so
// the limiter trims steady-state traffic, and the shed queue kicks in at
// half the overload threshold so bursts shed data-plane load before the
// load policy ever reports overload.
func SheddingConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.FlashCrowdScript(World, 4, 400, 22, 10, seed)
	cfg.Middleware = &sim.MiddlewareConfig{
		RateLimitPerSec: 4,
		RateLimitBurst:  8,
		ShedQueue:       1500,
	}
	return cfg
}

// MigrationConfig builds the multi-hotspot migration storm: three crowds
// that keep relocating, so load never settles where the last split put it.
func MigrationConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.MigrationScript(World, 3, 3, 200, 25, seed)
	return cfg
}

// ReclaimStressConfig builds the split/reclaim thrash scenario: one point
// surging over and draining under the thresholds, cycle after cycle.
func ReclaimStressConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 115
	cfg.Script = game.ReclaimStressScript(World, 5, 400, 10, 10)
	return cfg
}

// LossyConfig builds the bursty-loss scenario: the flash-crowd churn
// workload with every link losing 2% of data packets i.i.d. plus
// Gilbert–Elliott bursts (30% loss while a burst lasts). Session control
// stays reliable, so the cluster keeps reshaping itself while gameplay
// deliveries and echoes go missing.
func LossyConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.FlashCrowdScript(World, 4, 400, 22, 10, seed)
	cfg.Netem = netem.Config{Link: netem.LinkConfig{
		Loss:       0.02,
		BurstLoss:  0.30,
		BurstEnter: 0.02,
		BurstExit:  0.25,
	}}
	return cfg
}

// JitteryConfig builds the jitter-storm scenario: a split-forcing hotspot
// played over a 40ms±100ms WAN that degrades to 100ms±300ms mid-run —
// jitter well past the 100ms tick, so deliveries reorder across ticks —
// and calms back down before the crowd drains.
func JitteryConfig(seed int64) sim.Config {
	baseline := netem.LinkConfig{DelayMs: 40, JitterMs: 100}
	storm := netem.LinkConfig{DelayMs: 100, JitterMs: 300}
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.JitterStormScript(World, 500, 40, 75, baseline, storm)
	cfg.Netem = netem.Config{Link: baseline}
	return cfg
}

// PartitionConfig builds the backbone-partition scenario: a hotspot forces
// a split, then the child server is cut off the inter-server network from
// t=40 to t=65 while its clients keep playing. Peer forwarding across the
// boundary blackholes; the severed counter measures the consistency-set
// traffic the partition cost.
func PartitionConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 100
	cfg.Script = game.PartitionScript(World, 600, 40, 65)
	return cfg
}

// CrashStormConfig builds the crash-storm scenario: two hotspots split the
// fleet out, then servers 2 and 3 crash for 12s each in a rolling wave
// (server 2 twice). Crashed servers freeze with their state and every
// link touching them blackholes; recovery drains the backlog.
func CrashStormConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.Script = game.CrashStormScript(World, 450, 45, 18, 12,
		[]id.ServerID{2, 3, 2})
	return cfg
}

// RecoveryConfig builds the crash-recovery scenario: the hotspot splits
// the fleet out to seven servers, every server checkpoints its full state
// every 10 seconds, and two of the crowd-carrying children (servers 3 and
// 6 for these splits) crash at t=55 losing everything. On recovery at t=70
// they restart from their last checkpoint, resync topology from the MC,
// and their clients reconnect. A transient join/leave wave before the
// crash makes checkpoint staleness observable: servers checkpointing
// rarely roll back past the wave's departure and resurrect it as ghosts.
// Experiment E7 sweeps the checkpoint interval over this scenario.
func RecoveryConfig(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 110
	cfg.CheckpointEverySeconds = 10
	cfg.Script = game.RecoveryScript(World, 500, 55, 70, []id.ServerID{3, 6})
	return cfg
}

// SurgeWarmupSeconds is the surge family's branch point: every surge-*
// scenario shares the identical first 70 simulated seconds.
const SurgeWarmupSeconds = 70

// surgeBase is the family's shared config: the warmup crowd forces the
// fleet to split out and settle before any tail diverges. Checkpointing is
// on family-wide (the crash tail needs it, and family members must share
// everything except the script tail).
func surgeBase(seed int64) sim.Config {
	cfg := scenarioBase(seed)
	cfg.DurationSeconds = 130
	cfg.CheckpointEverySeconds = 15
	cfg.Script = surgeWarmup()
	return cfg
}

// surgeWarmup is the shared script prefix (all events strictly before
// SurgeWarmupSeconds).
func surgeWarmup() game.Script {
	center := geom.Pt(
		World.MinX+0.75*World.Width(),
		World.MinY+0.25*World.Height(),
	)
	return game.Script{
		{At: 10, Kind: game.EventJoin, Count: 500, Center: center, Spread: 0.08 * World.Width(), Tag: "surge"},
	}
}

// SurgeDrainConfig: after the shared warmup the crowd drains in two gulps,
// exercising reclaim over the branched state.
func SurgeDrainConfig(seed int64) sim.Config {
	cfg := surgeBase(seed)
	cfg.Script = append(surgeWarmup(),
		game.Event{At: 75, Kind: game.EventLeave, Count: 250, Tag: "surge"},
		game.Event{At: 95, Kind: game.EventLeave, Count: 250, Tag: "surge"},
	)
	return cfg
}

// SurgeSecondWaveConfig: a second crowd lands in the opposite corner while
// the first persists, forcing fresh splits far from the warmed-up ones.
func SurgeSecondWaveConfig(seed int64) sim.Config {
	cfg := surgeBase(seed)
	west := geom.Pt(World.MinX+0.25*World.Width(), World.MinY+0.75*World.Height())
	cfg.Script = append(surgeWarmup(),
		game.Event{At: 75, Kind: game.EventJoin, Count: 400, Center: west, Spread: 0.08 * World.Width(), Tag: "wave2"},
		game.Event{At: 110, Kind: game.EventLeave, Count: 400, Tag: "wave2"},
		game.Event{At: 115, Kind: game.EventLeave, Count: 250, Tag: "surge"},
	)
	return cfg
}

// SurgeJitterConfig: the network degrades to heavy reordering jitter for
// ~30s after the warmup, then heals.
func SurgeJitterConfig(seed int64) sim.Config {
	cfg := surgeBase(seed)
	cfg.Script = append(surgeWarmup(),
		game.Event{At: 72, Kind: game.EventImpair, Impair: netem.LinkConfig{DelayMs: 80, JitterMs: 250, Loss: 0.01}},
		game.Event{At: 100, Kind: game.EventImpair},
		game.Event{At: 110, Kind: game.EventLeave, Count: 250, Tag: "surge"},
	)
	return cfg
}

// SurgeCrashConfig: the loaded child loses its state right after the
// warmup and recovers from the family's 15s checkpoints.
func SurgeCrashConfig(seed int64) sim.Config {
	cfg := surgeBase(seed)
	cfg.Script = append(surgeWarmup(),
		game.Event{At: 75, Kind: game.EventCrashLose, Servers: []id.ServerID{2}},
		game.Event{At: 85, Kind: game.EventRecover, Servers: []id.ServerID{2}},
		game.Event{At: 115, Kind: game.EventLeave, Count: 250, Tag: "surge"},
	)
	return cfg
}

// RunScenarios executes the named scenarios (all of them when names is
// empty) concurrently on the sweep engine and reports each one's headline
// numbers. Numbers are keyed "<scenario>/<metric>".
func RunScenarios(ctx context.Context, r Runner, seed int64, names ...string) (*Report, error) {
	scs, err := scenariosByName(names)
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, 0, len(scs))
	for _, sc := range scs {
		jobs = append(jobs, Job{Name: sc.Name, Config: sc.Config(seed)})
	}
	outs, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	return scenarioReport(outs), nil
}

// scenariosByName resolves names (all scenarios when empty) in table order
// of the request.
func scenariosByName(names []string) ([]Scenario, error) {
	if len(names) == 0 {
		names = ScenarioNames()
	}
	scs := make([]Scenario, 0, len(names))
	for _, name := range names {
		sc, ok := ScenarioByName(name)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown scenario %q (known: %v)", name, ScenarioNames())
		}
		scs = append(scs, sc)
	}
	return scs, nil
}

// scenarioReport renders the shared sweep report for RunScenarios and
// RunScenariosBranched.
func scenarioReport(outs []RunOutput) *Report {
	rep := &Report{ID: "SWEEP", Title: "scenario sweep", Numbers: map[string]float64{}}
	rep.addf("%-16s %5s %6s %7s %9s %10s %8s %9s %8s %8s %7s %9s %12s", "scenario", "peak", "final", "splits", "reclaims", "redirects", "dropped", "lost", "severed", "delayed", "ghosts", "restarts", "p95 lat(ms)")
	for _, o := range outs {
		res := o.Result
		splits, reclaims := countEvents(res)
		rep.addf("%-16s %5d %6d %7d %9d %10d %8d %9d %8d %8d %7d %9d %12.1f",
			o.Name, res.PeakServers, res.FinalServers, splits, reclaims,
			res.Redirects, res.DroppedPackets,
			res.NetemLost, res.NetemSevered, res.NetemDelayed,
			res.GhostsExpired, res.Restarts,
			res.Latency.Quantile(0.95))
		rep.Numbers[o.Name+"/peak_servers"] = float64(res.PeakServers)
		rep.Numbers[o.Name+"/final_servers"] = float64(res.FinalServers)
		rep.Numbers[o.Name+"/splits"] = float64(splits)
		rep.Numbers[o.Name+"/reclaims"] = float64(reclaims)
		rep.Numbers[o.Name+"/redirects"] = float64(res.Redirects)
		rep.Numbers[o.Name+"/dropped"] = float64(res.DroppedPackets)
		rep.Numbers[o.Name+"/netem_lost"] = float64(res.NetemLost)
		rep.Numbers[o.Name+"/netem_severed"] = float64(res.NetemSevered)
		rep.Numbers[o.Name+"/netem_delayed"] = float64(res.NetemDelayed)
		rep.Numbers[o.Name+"/ghosts"] = float64(res.GhostsExpired)
		rep.Numbers[o.Name+"/restarts"] = float64(res.Restarts)
		rep.Numbers[o.Name+"/ratelimited"] = float64(res.RateLimited)
		rep.Numbers[o.Name+"/shed"] = float64(res.AdmissionShed)
		rep.Numbers[o.Name+"/p95_ms"] = res.Latency.Quantile(0.95)
	}
	return rep
}
