// Branching sweeps: scenario families share a deterministic warmup prefix,
// so the sweep runs the warmup once per family, snapshots the complete
// simulation state, and fans the scenario tails out from the snapshot —
// cutting wall-clock on warmup-heavy tables while producing results
// byte-identical to cold starts (each tail's restored run continues the
// warmup exactly as its own cold run would have, which
// TestBranchedSweepMatchesCold pins fingerprint-for-fingerprint).
package experiments

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"matrix/internal/sim"
)

// RunScenariosBranched executes the named scenarios (all when empty) like
// RunScenarios, but scenarios sharing a Family run their warmup once: the
// family's shared prefix is simulated, snapshotted, and every member is
// restored from the snapshot with its own script tail and duration.
// Scenarios without a family (or alone in theirs) cold-start as usual.
func RunScenariosBranched(ctx context.Context, r Runner, seed int64, names ...string) (*Report, error) {
	outs, err := BranchedOutputs(ctx, r, seed, names...)
	if err != nil {
		return nil, err
	}
	return scenarioReport(outs), nil
}

// BranchedOutputs is RunScenariosBranched without the report rendering:
// one RunOutput per requested scenario, in request order. Tests compare
// these against Runner.Run's cold outputs.
func BranchedOutputs(ctx context.Context, r Runner, seed int64, names ...string) ([]RunOutput, error) {
	scs, err := scenariosByName(names)
	if err != nil {
		return nil, err
	}
	type member struct {
		idx int
		sc  Scenario
		cfg sim.Config
	}
	outs := make([]RunOutput, len(scs))
	var cold []member
	families := map[string][]member{}
	var famOrder []string
	for i, sc := range scs {
		m := member{idx: i, sc: sc, cfg: sc.Config(seed)}
		// Apply the sweep-wide policy here, before family validation, so a
		// branched sweep under any policy stays byte-identical to its cold
		// sweep: the warmup runs under the policy and every tail inherits it
		// (with its state) from the captured config.
		if m.cfg.Policy == "" {
			m.cfg.Policy = r.Policy
		}
		outs[i].Name = sc.Name
		if sc.Family == "" || sc.WarmupSeconds <= 0 {
			cold = append(cold, m)
			continue
		}
		if _, ok := families[sc.Family]; !ok {
			famOrder = append(famOrder, sc.Family)
		}
		families[sc.Family] = append(families[sc.Family], m)
	}
	// A family of one gains nothing from a warmup+restore round trip.
	for _, fam := range famOrder {
		if len(families[fam]) == 1 {
			cold = append(cold, families[fam][0])
			delete(families, fam)
		}
	}
	for fam, members := range families {
		cfgs := make([]sim.Config, len(members))
		warms := make([]float64, len(members))
		for i, m := range members {
			cfgs[i] = m.cfg
			warms[i] = m.sc.WarmupSeconds
		}
		if err := validateFamily(fam, warms[0], cfgs, warms); err != nil {
			return nil, err
		}
	}

	// One bounded pool runs everything: cold scenarios, family warmups, and
	// the tails a finished warmup fans out. Warmup tasks return after
	// submitting their tails (they do not hold a slot waiting), so the pool
	// cannot deadlock.
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.workers())
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		mu.Unlock()
	}
	submit := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f()
		}()
	}

	for _, m := range cold {
		m := m
		submit(func() {
			if err := ctx.Err(); err != nil {
				outs[m.idx].Err = err
				fail(err)
				return
			}
			res, err := r.runOne(ctx, m.cfg)
			if err != nil {
				err = fmt.Errorf("run %q: %w", m.sc.Name, err)
				outs[m.idx].Err = err
				fail(err)
				return
			}
			outs[m.idx].Result = res
		})
	}
	for _, fam := range famOrder {
		members, ok := families[fam]
		if !ok {
			continue
		}
		submit(func() {
			st, err := r.runWarmup(ctx, members[0].cfg, members[0].sc.WarmupSeconds)
			if err != nil {
				err = fmt.Errorf("family %q warmup: %w", fam, err)
				for _, m := range members {
					outs[m.idx].Err = err
				}
				fail(err)
				return
			}
			for _, m := range members {
				m := m
				submit(func() {
					res, err := r.runTail(ctx, st, m.cfg)
					if err != nil {
						err = fmt.Errorf("run %q: %w", m.sc.Name, err)
						outs[m.idx].Err = err
						fail(err)
						return
					}
					outs[m.idx].Result = res
				})
			}
		})
	}
	wg.Wait()
	return outs, firstErr
}

// runWarmup simulates cfg's shared prefix up to (but not including) the
// first tick at or after warmup seconds, then captures the state. The
// config's script is truncated to the prefix so the captured state carries
// no tail events — each restore installs its member's full script.
func (r Runner) runWarmup(ctx context.Context, cfg sim.Config, warmup float64) (*sim.State, error) {
	warmCfg := cfg
	warmCfg.Script = cfg.Script.PrefixBefore(warmup)
	if warmCfg.SimWorkers == 0 {
		warmCfg.SimWorkers = r.SimWorkers
	}
	s, err := sim.New(warmCfg)
	if err != nil {
		return nil, err
	}
	if err := s.Start(); err != nil {
		return nil, err
	}
	every := r.cancelEvery()
	for n := 0; !s.Done() && s.NextTime() < warmup; n++ {
		if n%every == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.CaptureState()
}

// runTail restores a member simulation from the family snapshot and drives
// it to completion.
func (r Runner) runTail(ctx context.Context, st *sim.State, cfg sim.Config) (*sim.Result, error) {
	simWorkers := cfg.SimWorkers
	if simWorkers == 0 {
		simWorkers = r.SimWorkers
	}
	s, err := sim.RestoreWith(st, sim.RestoreOptions{
		Script:          cfg.Script,
		DurationSeconds: cfg.DurationSeconds,
		SimWorkers:      simWorkers,
	})
	if err != nil {
		return nil, err
	}
	every := r.cancelEvery()
	for n := 0; !s.Done(); n++ {
		if n%every == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}

// validateFamily checks the branching soundness conditions: every member's
// config is identical apart from script and duration, and every member's
// script prefix before the warmup point matches exactly.
func validateFamily(fam string, warmup float64, cfgs []sim.Config, warmups []float64) error {
	base := normalizeConfig(cfgs[0])
	prefix := cfgs[0].Script.PrefixBefore(warmup)
	for i := 1; i < len(cfgs); i++ {
		if warmups[i] != warmup {
			return fmt.Errorf("experiments: family %q members disagree on the warmup point (%g vs %g)", fam, warmups[i], warmup)
		}
		if !reflect.DeepEqual(normalizeConfig(cfgs[i]), base) {
			return fmt.Errorf("experiments: family %q member %d differs from the family base beyond script/duration", fam, i)
		}
		p := cfgs[i].Script.PrefixBefore(warmup)
		if !reflect.DeepEqual(p, prefix) {
			return fmt.Errorf("experiments: family %q member %d has a different script prefix before t=%g", fam, i, warmup)
		}
	}
	return nil
}

// normalizeConfig blanks the per-member fields so DeepEqual compares only
// what the warmup actually shares. SimWorkers is an execution knob that
// never affects results, so members may differ on it freely.
func normalizeConfig(cfg sim.Config) sim.Config {
	cfg.Script = nil
	cfg.DurationSeconds = 0
	cfg.SimWorkers = 0
	return cfg
}
