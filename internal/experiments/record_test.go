package experiments

import (
	"testing"

	"matrix/internal/flight"
	"matrix/internal/sim"
)

// TestFlashCrowdAuditComplete pins the acceptance criterion on the real
// scenario-table entry: a flight-recorded flashcrowd run must explain every
// observed split and reclaim — each Result.Events entry has a granted audit
// decision at the same instant with the load inputs that produced it.
func TestFlashCrowdAuditComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the full 110s flashcrowd scenario")
	}
	t.Parallel()
	s, err := sim.New(FlashCrowdConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New()
	s.SetRecorder(rec)
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	decs := rec.Decisions()
	splits, reclaims := 0, 0
	for _, ev := range res.Events {
		if ev.Kind != "split" && ev.Kind != "reclaim" {
			continue
		}
		explained := false
		for _, d := range decs {
			if d.Kind == ev.Kind && d.Granted && d.Time == ev.Time &&
				d.Child == int64(ev.Server) && len(d.Inputs) > 0 {
				explained = true
				break
			}
		}
		if !explained {
			t.Errorf("%s of server %v at t=%.1f unexplained by the audit log", ev.Kind, ev.Server, ev.Time)
		}
		if ev.Kind == "split" {
			splits++
		} else {
			reclaims++
		}
	}
	// Four 400-client crowds that drain within ~15s must both split and
	// reclaim; a run that does neither proves nothing.
	if splits == 0 || reclaims == 0 {
		t.Fatalf("flashcrowd run had %d splits, %d reclaims; expected both", splits, reclaims)
	}
}
