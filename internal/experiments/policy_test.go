package experiments

import (
	"math"
	"testing"
)

// TestRankPolicies pins the composite scoring on synthetic metrics: a
// policy that wins every metric of every scenario scores exactly 1.0 and
// ranks first; a strictly worse one ranks behind it; zero-valued metrics
// compare via the (v+1)/(min+1) shift instead of dividing by zero.
func TestRankPolicies(t *testing.T) {
	pols := []string{"good", "bad"}
	scs := []Scenario{{Name: "a"}, {Name: "b"}}
	per := map[string]policyMetrics{
		"a/good": {P95Ms: 10, Dropped: 0, Redirects: 5, Peak: 2, Topology: 1},
		"a/bad":  {P95Ms: 20, Dropped: 100, Redirects: 10, Peak: 4, Topology: 3},
		"b/good": {P95Ms: 50, Dropped: 0, Redirects: 0, Peak: 3, Topology: 2},
		"b/bad":  {P95Ms: 60, Dropped: 0, Redirects: 8, Peak: 6, Topology: 2},
	}
	standings := rankPolicies(pols, scs, per)
	if len(standings) != 2 {
		t.Fatalf("standings = %v", standings)
	}
	if standings[0].Policy != "good" || standings[1].Policy != "bad" {
		t.Fatalf("ranking = [%s %s], want [good bad]", standings[0].Policy, standings[1].Policy)
	}
	if math.Abs(standings[0].Score-1.0) > 1e-12 {
		t.Errorf("all-metric winner scores %.6f, want exactly 1.0", standings[0].Score)
	}
	if standings[1].Score <= standings[0].Score {
		t.Errorf("loser score %.6f not above winner %.6f", standings[1].Score, standings[0].Score)
	}
	// Mean costs average over scenarios.
	if got := standings[0].Mean.P95Ms; got != 30 {
		t.Errorf("mean p95 = %g, want 30", got)
	}
	// The report renders a row per policy with score and rank numbers.
	rep := policyReport(standings, scs, per)
	if rep.ID != "E8" {
		t.Errorf("report ID = %q", rep.ID)
	}
	if rep.Numbers["good/rank"] != 1 || rep.Numbers["bad/rank"] != 2 {
		t.Errorf("rank numbers = %v", rep.Numbers)
	}
	if rep.Numbers["a/bad/dropped"] != 100 {
		t.Errorf("detail numbers missing: %v", rep.Numbers)
	}
}
