// E8 — the policy head-to-head: every registered decision policy
// (internal/policy) runs the full scenario table and the policies are
// ranked on a composite of the headline costs. The sweep is branched the
// same way RunScenariosBranched branches: each scenario family's shared
// warmup is simulated ONCE per seed (under the default paper policy,
// since the family members must share their prefix bit-for-bit), and one
// tail per (member, policy) pair is restored from that snapshot with
// sim.RestoreOptions.Policy swapping the decision policy at the branch
// point. The static straw man is the exception: restoring an adaptively
// split fleet under a policy whose whole premise is "never reshape"
// would hand it the adaptive warmup for free, so static rows always
// cold-start on an internal/staticpart grid of MaxServers fixed tiles.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"matrix/internal/policy"
	"matrix/internal/sim"
	"matrix/internal/staticpart"
)

// policyMetrics are the per-run costs the ranking composites over.
// Lower is better for every one of them.
type policyMetrics struct {
	P95Ms     float64 // action→echo latency p95 (ms)
	Dropped   float64 // packets dropped by full queues
	Redirects float64 // clients bounced between servers
	Peak      float64 // peak servers drawn from the pool
	Topology  float64 // splits + reclaims (churn)
}

// values returns the metrics in a fixed order matching policyMetricNames.
func (m policyMetrics) values() []float64 {
	return []float64{m.P95Ms, m.Dropped, m.Redirects, m.Peak, m.Topology}
}

var policyMetricNames = []string{"p95_ms", "dropped", "redirects", "peak_servers", "topology"}

// PolicyStanding is one policy's aggregate result in the E8 study,
// exported so docs tooling and tests can consume the ranking without
// parsing the report text.
type PolicyStanding struct {
	// Policy is the registered policy name.
	Policy string
	// Score is the composite: for every scenario and metric the policy's
	// value is normalized by the best (lowest) value any policy achieved
	// on that scenario+metric — (v+1)/(min+1), so zero-valued metrics
	// still compare — and the normalized values are averaged. 1.0 means
	// the policy won every metric of every scenario outright.
	Score float64
	// Mean per-scenario costs, for the summary table.
	Mean policyMetrics
}

// RunPolicyStudy executes E8: all registered policies across the full
// scenario table, ranked by composite score. Family warmups run once per
// family+seed and fan one tail out per policy; everything else (and every
// static-policy row) cold-starts.
func RunPolicyStudy(ctx context.Context, r Runner, seed int64) (*Report, error) {
	standings, perScenario, err := PolicyStudyOutputs(ctx, r, seed)
	if err != nil {
		return nil, err
	}
	return policyReport(standings, Scenarios(), perScenario), nil
}

// PolicyStudyOutputs is RunPolicyStudy without the report rendering: the
// ranked standings plus the raw per-scenario metrics keyed
// "<scenario>/<policy>".
func PolicyStudyOutputs(ctx context.Context, r Runner, seed int64) ([]PolicyStanding, map[string]policyMetrics, error) {
	pols := policy.Names()
	scs := Scenarios()

	type member struct {
		sc  Scenario
		cfg sim.Config
	}
	var cold []member
	families := map[string][]member{}
	var famOrder []string
	for _, sc := range scs {
		m := member{sc: sc, cfg: sc.Config(seed)}
		if sc.Family == "" || sc.WarmupSeconds <= 0 {
			cold = append(cold, m)
			continue
		}
		if _, ok := families[sc.Family]; !ok {
			famOrder = append(famOrder, sc.Family)
		}
		families[sc.Family] = append(families[sc.Family], m)
	}

	results := make(map[string]*sim.Result, len(scs)*len(pols))
	var mu sync.Mutex
	var firstErr error
	put := func(sc, pol string, res *sim.Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("policy study %s/%s: %w", sc, pol, err)
			}
			return
		}
		results[sc+"/"+pol] = res
	}

	// One bounded pool, same shape as BranchedOutputs: warmup tasks return
	// after submitting their tails, so the pool cannot deadlock.
	var wg sync.WaitGroup
	sem := make(chan struct{}, r.workers())
	submit := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f()
		}()
	}
	runCold := func(m member, pol string) {
		submit(func() {
			if err := ctx.Err(); err != nil {
				put(m.sc.Name, pol, nil, err)
				return
			}
			cfg := m.cfg
			cfg.Policy = pol
			if pol == "static" {
				tiles, err := staticpart.Grid(cfg.World, cfg.MaxServers)
				if err != nil {
					put(m.sc.Name, pol, nil, err)
					return
				}
				cfg.Static = tiles
			}
			res, err := r.runOne(ctx, cfg)
			put(m.sc.Name, pol, res, err)
		})
	}

	for _, m := range cold {
		for _, pol := range pols {
			runCold(m, pol)
		}
	}
	for _, fam := range famOrder {
		members := families[fam]
		// Static rows cold-start even inside families (see package doc).
		for _, m := range members {
			runCold(m, "static")
		}
		submit(func() {
			// The shared warmup runs under the default policy; the tails
			// diverge at the branch point via RestoreOptions.Policy (the
			// paper tail restores the captured policy state and stays
			// byte-identical to its cold run; a rival tail swaps the
			// policy in with fresh state).
			warmCfg := members[0].cfg
			warmCfg.Policy = policy.Default
			st, err := r.runWarmup(ctx, warmCfg, members[0].sc.WarmupSeconds)
			if err != nil {
				for _, m := range members {
					for _, pol := range pols {
						if pol != "static" {
							put(m.sc.Name, pol, nil, err)
						}
					}
				}
				return
			}
			for _, m := range members {
				for _, pol := range pols {
					if pol == "static" {
						continue
					}
					m, pol := m, pol
					submit(func() {
						res, err := r.runPolicyTail(ctx, st, m.cfg, pol)
						put(m.sc.Name, pol, res, err)
					})
				}
			}
		})
	}
	wg.Wait()
	if firstErr != nil {
		return nil, nil, firstErr
	}

	perScenario := make(map[string]policyMetrics, len(results))
	for key, res := range results {
		splits, reclaims := countEvents(res)
		perScenario[key] = policyMetrics{
			P95Ms:     res.Latency.Quantile(0.95),
			Dropped:   float64(res.DroppedPackets),
			Redirects: float64(res.Redirects),
			Peak:      float64(res.PeakServers),
			Topology:  float64(splits + reclaims),
		}
	}
	return rankPolicies(pols, scs, perScenario), perScenario, nil
}

// rankPolicies computes each policy's composite score (see
// PolicyStanding.Score) and returns the standings best-first.
func rankPolicies(pols []string, scs []Scenario, perScenario map[string]policyMetrics) []PolicyStanding {
	standings := make([]PolicyStanding, 0, len(pols))
	for _, pol := range pols {
		var sum float64
		var mean policyMetrics
		for _, sc := range scs {
			mine := perScenario[sc.Name+"/"+pol].values()
			var scSum float64
			for mi, v := range mine {
				min := v
				for _, other := range pols {
					if ov := perScenario[sc.Name+"/"+other].values()[mi]; ov < min {
						min = ov
					}
				}
				scSum += (v + 1) / (min + 1)
			}
			sum += scSum / float64(len(mine))
			m := perScenario[sc.Name+"/"+pol]
			mean.P95Ms += m.P95Ms
			mean.Dropped += m.Dropped
			mean.Redirects += m.Redirects
			mean.Peak += m.Peak
			mean.Topology += m.Topology
		}
		n := float64(len(scs))
		mean.P95Ms /= n
		mean.Dropped /= n
		mean.Redirects /= n
		mean.Peak /= n
		mean.Topology /= n
		standings = append(standings, PolicyStanding{
			Policy: pol,
			Score:  sum / n,
			Mean:   mean,
		})
	}
	sort.SliceStable(standings, func(i, j int) bool {
		return standings[i].Score < standings[j].Score
	})
	return standings
}

// policyReport renders the E8 report: the ranked summary first, then the
// per-scenario detail grid. Numbers carry the composite per policy
// ("<policy>/score", "<policy>/rank") and the full metric grid
// ("<scenario>/<policy>/<metric>").
func policyReport(standings []PolicyStanding, scs []Scenario, perScenario map[string]policyMetrics) *Report {
	rep := &Report{ID: "E8", Title: "policy head-to-head — all registered policies across the scenario table", Numbers: map[string]float64{}}
	rep.addf("%-4s %-12s %7s %10s %9s %10s %6s %9s", "rank", "policy", "score", "p95(ms)", "dropped", "redirects", "peak", "topology")
	for i, s := range standings {
		rep.addf("%-4d %-12s %7.3f %10.1f %9.0f %10.0f %6.1f %9.1f",
			i+1, s.Policy, s.Score, s.Mean.P95Ms, s.Mean.Dropped, s.Mean.Redirects, s.Mean.Peak, s.Mean.Topology)
		rep.Numbers[s.Policy+"/score"] = s.Score
		rep.Numbers[s.Policy+"/rank"] = float64(i + 1)
	}
	rep.addf("")
	rep.addf("per-scenario detail (p95 ms / dropped / redirects / peak / topology):")
	for _, sc := range scs {
		rep.addf("%-16s", sc.Name)
		for _, s := range standings {
			m := perScenario[sc.Name+"/"+s.Policy]
			rep.addf("  %-12s %10.1f %9.0f %10.0f %6.0f %9.0f",
				s.Policy, m.P95Ms, m.Dropped, m.Redirects, m.Peak, m.Topology)
			for mi, name := range policyMetricNames {
				rep.Numbers[sc.Name+"/"+s.Policy+"/"+name] = m.values()[mi]
			}
		}
	}
	return rep
}

// runPolicyTail is runTail with a policy swap at the branch point: the
// member simulation restores from the family snapshot under pol (fresh
// policy state when pol differs from the captured run's policy) and runs
// to completion.
func (r Runner) runPolicyTail(ctx context.Context, st *sim.State, cfg sim.Config, pol string) (*sim.Result, error) {
	simWorkers := cfg.SimWorkers
	if simWorkers == 0 {
		simWorkers = r.SimWorkers
	}
	s, err := sim.RestoreWith(st, sim.RestoreOptions{
		Script:          cfg.Script,
		DurationSeconds: cfg.DurationSeconds,
		SimWorkers:      simWorkers,
		Policy:          pol,
	})
	if err != nil {
		return nil, err
	}
	every := r.cancelEvery()
	for n := 0; !s.Done(); n++ {
		if n%every == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := s.Step(); err != nil {
			return nil, err
		}
	}
	return s.Finish(), nil
}
