package experiments

import (
	"context"
	"fmt"
)

// E7 — recovery gap and redirect storm vs checkpoint interval.
//
// The netem fail-stop model used to treat a crash as a pause: the process
// froze with its state and resumed. Real crashes lose state, and the
// classic middleware answer is periodic checkpointing — at the price of a
// rollback: everything since the last checkpoint is gone, departed clients
// resurrect as ghosts, and the restarted server must resync topology and
// re-admit every client. This experiment sweeps the checkpoint interval
// over the recovery scenario (hotspot splits the fleet, the loaded child
// loses its state at t=55 and recovers at t=70) and measures what the
// interval buys: the recovery gap each reconnecting client experienced,
// the size of the rejoin/redirect storm, and the ghost cleanup the
// rollback forced. "cold" restarts with no checkpoint at all — the server
// comes back empty and every client state is rebuilt from reconnects.
func RunRecovery(ctx context.Context, r Runner, seed int64) (*Report, error) {
	intervals := []float64{0, 5, 10, 20, 40}
	var jobs []Job
	for _, iv := range intervals {
		cfg := RecoveryConfig(seed)
		cfg.CheckpointEverySeconds = iv
		name := "cold"
		if iv > 0 {
			name = fmt.Sprintf("chk=%gs", iv)
		}
		jobs = append(jobs, Job{Name: name, Config: cfg})
	}
	outs, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "E7", Title: "crash recovery — recovery gap and redirect storm vs checkpoint interval", Numbers: map[string]float64{}}
	rep.addf("%-8s %9s %8s %12s %12s %10s %7s %9s %12s",
		"chkpt", "restarts", "rejoins", "gap p50(ms)", "gap p95(ms)", "redirects", "ghosts", "dropped", "p95 lat(ms)")
	for _, o := range outs {
		res := o.Result
		rep.addf("%-8s %9d %8d %12.0f %12.0f %10d %7d %9d %12.1f",
			o.Name, res.Restarts, res.RecoveryRejoins,
			res.RecoveryGap.Quantile(0.50), res.RecoveryGap.Quantile(0.95),
			res.Redirects, res.GhostsExpired, res.DroppedPackets,
			res.Latency.Quantile(0.95))
		rep.Numbers[o.Name+"/restarts"] = float64(res.Restarts)
		rep.Numbers[o.Name+"/rejoins"] = float64(res.RecoveryRejoins)
		rep.Numbers[o.Name+"/gap_p50_ms"] = res.RecoveryGap.Quantile(0.50)
		rep.Numbers[o.Name+"/gap_p95_ms"] = res.RecoveryGap.Quantile(0.95)
		rep.Numbers[o.Name+"/redirects"] = float64(res.Redirects)
		rep.Numbers[o.Name+"/ghosts"] = float64(res.GhostsExpired)
		rep.Numbers[o.Name+"/p95_ms"] = res.Latency.Quantile(0.95)
	}
	return rep, nil
}
