// Package experiments defines the canonical configurations and report
// generators for every table and figure in the paper's evaluation (§4).
// Both cmd/matrix-bench and the repository-root benchmarks call into this
// package, so the numbers printed by either are produced by the same code.
//
// Index:
//
//	E1a  Figure 2(a): clients per server vs. time under a 600-client hotspot
//	E1b  Figure 2(b): server receive-queue length vs. time, same run
//	E2   static partitioning vs. Matrix across bzflag/daimonin/quake2
//	E3a  microbenchmark: client switching latency
//	E3b  microbenchmark: coordinator overhead
//	E3c  microbenchmark: inter-Matrix traffic vs. overlap population
//	E4   user-study proxy: response-latency transparency across splits
//	E5   asymptotic scaling model
//	E6   static vs Matrix under degraded networks (beyond the paper)
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"matrix/internal/analysis"
	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/overlap"
	"matrix/internal/sim"
	"matrix/internal/space"
	"matrix/internal/staticpart"
)

// Report is one experiment's rendered output plus the headline numbers
// assertions key on.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Numbers holds named scalar results for programmatic checks.
	Numbers map[string]float64
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// World is the canonical experiment map: a 1000x1000 game world.
var World = geom.R(0, 0, 1000, 1000)

// Figure2Config is the paper's headline experiment: a 600-client BzFlag
// hotspot against adaptive Matrix with the paper's 300/150 thresholds.
func Figure2Config(seed int64) sim.Config {
	return sim.Config{
		Profile:            game.Bzflag(),
		World:              World,
		Seed:               seed,
		DurationSeconds:    300,
		MaxServers:         8,
		ServiceRatePerTick: 300, // 3000 pkt/s ≈ 600-client service capacity
		BasePopulation:     100,
		Script:             game.Figure2Script(World),
		LoadPolicy:         load.Config{OverloadQueue: 3000},
		SampleEverySeconds: 5,
	}
}

// RunFigure2 executes the Figure 2 scenario once and returns the run for
// both panels. The single run goes through the sweep engine so it is
// cancellable mid-run.
func RunFigure2(ctx context.Context, r Runner, seed int64) (*sim.Result, error) {
	results, err := r.RunConfigs(ctx, []sim.Config{Figure2Config(seed)})
	if err != nil {
		return nil, err
	}
	return results[0], nil
}

// Figure2a renders the clients-per-server time series (paper Fig. 2a).
func Figure2a(res *sim.Result) *Report {
	r := &Report{ID: "E1a", Title: "Figure 2(a) — clients per server under a 600-client hotspot", Numbers: map[string]float64{}}
	r.addf("%-8s %s", "t(s)", seriesHeader(res, "clients/"))
	for _, t := range sampleTimes(res) {
		r.addf("%-8.0f %s", t, seriesRow(res, "clients/", t))
	}
	splits, reclaims := countEvents(res)
	r.addf("events: %d splits, %d reclaims; peak servers %d, final %d",
		splits, reclaims, res.PeakServers, res.FinalServers)
	r.Numbers["peak_servers"] = float64(res.PeakServers)
	r.Numbers["final_servers"] = float64(res.FinalServers)
	r.Numbers["splits"] = float64(splits)
	r.Numbers["reclaims"] = float64(reclaims)
	return r
}

// Figure2b renders the queue-length time series (paper Fig. 2b).
func Figure2b(res *sim.Result) *Report {
	r := &Report{ID: "E1b", Title: "Figure 2(b) — server receive-queue length, same run", Numbers: map[string]float64{}}
	r.addf("%-8s %s", "t(s)", seriesHeader(res, "queue/"))
	var peakQ float64
	for _, t := range sampleTimes(res) {
		r.addf("%-8.0f %s", t, seriesRow(res, "queue/", t))
	}
	for _, s := range res.Metrics.SeriesByPrefix("queue/") {
		if m := s.Max(); m > peakQ {
			peakQ = m
		}
	}
	endQ := 0.0
	for _, s := range res.Metrics.SeriesByPrefix("queue/") {
		_, vals := s.Points()
		if len(vals) > 0 && vals[len(vals)-1] > endQ {
			endQ = vals[len(vals)-1]
		}
	}
	r.addf("peak queue %0.f, final queue %0.f", peakQ, endQ)
	r.Numbers["peak_queue"] = peakQ
	r.Numbers["final_queue"] = endQ
	return r
}

// seriesHeader lists the series short names for a prefix.
func seriesHeader(res *sim.Result, prefix string) string {
	var cols []string
	for _, s := range res.Metrics.SeriesByPrefix(prefix) {
		cols = append(cols, fmt.Sprintf("%-10s", strings.TrimPrefix(s.Name(), prefix)))
	}
	return strings.Join(cols, " ")
}

// seriesRow renders one sample row across a prefix's series.
func seriesRow(res *sim.Result, prefix string, t float64) string {
	var cols []string
	for _, s := range res.Metrics.SeriesByPrefix(prefix) {
		cols = append(cols, fmt.Sprintf("%-10.0f", s.At(t)))
	}
	return strings.Join(cols, " ")
}

// sampleTimes returns the Figure 2 report rows (every 10 simulated
// seconds).
func sampleTimes(res *sim.Result) []float64 {
	active := res.Metrics.Series("servers/active")
	times, _ := active.Points()
	if len(times) == 0 {
		return nil
	}
	end := times[len(times)-1]
	var out []float64
	for t := 0.0; t <= end; t += 10 {
		out = append(out, t)
	}
	return out
}

func countEvents(res *sim.Result) (splits, reclaims int) {
	for _, e := range res.Events {
		switch e.Kind {
		case "split":
			splits++
		case "reclaim":
			reclaims++
		}
	}
	return splits, reclaims
}

// StaticVsMatrixConfig builds the E2 run for one game profile: the same
// single-hotspot workload against (a) static partitioning with n servers
// and (b) adaptive Matrix with a pool of maxServers.
func StaticVsMatrixConfig(profile game.Profile, staticN, maxServers int, seed int64) (staticCfg, matrixCfg sim.Config, err error) {
	script := game.Script{
		{At: 10, Kind: game.EventJoin, Count: 600, Center: geom.Pt(800, 300), Spread: 120, Tag: "hot"},
	}
	// Capacity scales with the game's update rate so every game runs in
	// the same relative regime the paper's testbed did: one server
	// comfortably serves ~500 clients of that game, the 700-client
	// hotspot tile overloads it.
	base := sim.Config{
		Profile:            profile,
		World:              World,
		Seed:               seed,
		DurationSeconds:    120,
		ServiceRatePerTick: int(50 * profile.UpdatesPerSec),
		MaxQueue:           2000,
		BasePopulation:     100,
		Script:             script,
		LoadPolicy:         load.Config{OverloadQueue: int(300 * profile.UpdatesPerSec)},
		SampleEverySeconds: 5,
	}
	tiles, err := staticpart.Grid(World, staticN)
	if err != nil {
		return sim.Config{}, sim.Config{}, err
	}
	staticCfg = base
	staticCfg.Static = tiles
	staticCfg.MaxServers = staticN
	matrixCfg = base
	matrixCfg.MaxServers = maxServers
	return staticCfg, matrixCfg, nil
}

// RunStaticVsMatrix executes E2 for every bundled game and reports drops,
// latency and server usage side by side. The six runs (three games, two
// modes) are independent, so they execute concurrently on the sweep
// engine.
func RunStaticVsMatrix(ctx context.Context, r Runner, seed int64) (*Report, error) {
	var jobs []Job
	for _, profile := range []game.Profile{game.Bzflag(), game.Daimonin(), game.Quake2()} {
		staticCfg, matrixCfg, err := StaticVsMatrixConfig(profile, 4, 10, seed)
		if err != nil {
			return nil, err
		}
		// Job names double as the report labels: "<game>/<mode>".
		jobs = append(jobs,
			Job{Name: profile.Name + "/static", Config: staticCfg},
			Job{Name: profile.Name + "/matrix", Config: matrixCfg},
		)
	}
	outs, err := r.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "E2", Title: "static partitioning vs Matrix under a 600-client hotspot", Numbers: map[string]float64{}}
	rep.addf("%-10s %-8s %9s %9s %12s %12s", "game", "mode", "servers", "peakQ", "dropped", "p95 lat(ms)")
	for _, o := range outs {
		res := o.Result
		var peakQ float64
		for _, se := range res.Metrics.SeriesByPrefix("queue/") {
			if m := se.Max(); m > peakQ {
				peakQ = m
			}
		}
		gameName, mode, _ := strings.Cut(o.Name, "/")
		rep.addf("%-10s %-8s %9d %9.0f %12d %12.0f",
			gameName, mode, res.PeakServers, peakQ,
			res.DroppedPackets, res.Latency.Quantile(0.95))
		rep.Numbers[o.Name+"/dropped"] = float64(res.DroppedPackets)
		rep.Numbers[o.Name+"/p95"] = res.Latency.Quantile(0.95)
		rep.Numbers[o.Name+"/peak_servers"] = float64(res.PeakServers)
	}
	return rep, nil
}

// RunSwitchingMicro executes E3a: a small run that forces one split and
// measures the redirect→rejoin latency distribution.
func RunSwitchingMicro(ctx context.Context, runner Runner, seed int64) (*Report, error) {
	script := game.Script{
		{At: 5, Kind: game.EventJoin, Count: 400, Center: geom.Pt(750, 250), Spread: 120, Tag: "hot"},
	}
	results, err := runner.RunConfigs(ctx, []sim.Config{{
		Profile:            game.Bzflag(),
		World:              World,
		Seed:               seed,
		DurationSeconds:    40,
		MaxServers:         4,
		ServiceRatePerTick: 250,
		BasePopulation:     50,
		Script:             script,
	}})
	if err != nil {
		return nil, err
	}
	res := results[0]
	r := &Report{ID: "E3a", Title: "microbenchmark — client switching latency", Numbers: map[string]float64{}}
	r.addf("switches: %d", res.SwitchLatency.Count())
	r.addf("latency ms: %s", res.SwitchLatency.Summary())
	r.Numbers["switches"] = float64(res.SwitchLatency.Count())
	r.Numbers["p95_ms"] = res.SwitchLatency.Quantile(0.95)
	r.Numbers["mean_ms"] = res.SwitchLatency.Mean()
	return r, nil
}

// RunTrafficMicro executes E3c: sweep the visibility radius and show that
// inter-Matrix traffic tracks the overlap-region population linearly ("the
// amount of traffic sent between Matrix servers corresponded directly to
// the size of the overlap regions").
func RunTrafficMicro(ctx context.Context, runner Runner, seed int64) (*Report, error) {
	script := game.Script{
		{At: 1, Kind: game.EventJoin, Count: 200, Center: geom.Pt(500, 500), Spread: 450, Tag: "crowd"},
	}
	radii := []float64{10, 20, 40, 80}
	var jobs []Job
	for _, radius := range radii {
		profile := game.Bzflag()
		profile.Radius = radius
		// Movement-only mix: action updates carry a far-away destination
		// tag whose forwarding band is set by ActionRange, not R, and
		// would blur the overlap-size relation this micro isolates.
		profile.MoveFraction, profile.ActionFraction, profile.ChatFraction = 1, 0, 0
		// Two fixed partitions: a single boundary through the crowd.
		tiles, err := staticpart.Grid(World, 2)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, Job{
			Name: fmt.Sprintf("r%.0f", radius),
			Config: sim.Config{
				Profile:            profile,
				World:              World,
				Seed:               seed,
				DurationSeconds:    60,
				ServiceRatePerTick: 2000,
				BasePopulation:     0,
				Script:             script,
				Static:             tiles,
				MaxServers:         2,
			},
		})
	}
	outs, err := runner.Run(ctx, jobs)
	if err != nil {
		return nil, err
	}
	r := &Report{ID: "E3c", Title: "microbenchmark — inter-Matrix traffic vs overlap size", Numbers: map[string]float64{}}
	r.addf("%-10s %14s %16s %16s", "radius", "overlap area", "fwd packets", "bytes/overlap")
	for i, o := range outs {
		res := o.Result
		perOverlap := 0.0
		if res.OverlapAreaLast > 0 {
			perOverlap = float64(res.ForwardedBytes) / res.OverlapAreaLast
		}
		r.addf("%-10.0f %14.0f %16d %16.1f", radii[i], res.OverlapAreaLast, res.ForwardedPackets, perOverlap)
		r.Numbers[fmt.Sprintf("fwd_packets_r%.0f", radii[i])] = float64(res.ForwardedPackets)
		r.Numbers[fmt.Sprintf("overlap_area_r%.0f", radii[i])] = res.OverlapAreaLast
	}
	return r, nil
}

// RunCoordinatorMicro executes E3b: the cost of the MC's overlap-table
// recomputation as the fleet grows — the paper found "the overhead of using
// a central coordinator was negligible", which holds because this cost is
// paid only on splits/reclaims, never on the packet path.
func RunCoordinatorMicro(ctx context.Context) (*Report, error) {
	r := &Report{ID: "E3b", Title: "microbenchmark — coordinator overlap-table recompute cost", Numbers: map[string]float64{}}
	r.addf("%-10s %14s %14s", "servers", "recompute", "per-table")
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		parts, err := randomPartitions(n, int64(n))
		if err != nil {
			return nil, err
		}
		const rounds = 20
		start := nowMonotonic()
		for i := 0; i < rounds; i++ {
			if _, err := overlap.BuildAll(parts, 40, uint64(i)); err != nil {
				return nil, err
			}
		}
		elapsed := nowMonotonic() - start
		per := elapsed / float64(rounds)
		r.addf("%-10d %12.3fms %12.4fms", n, per*1000, per*1000/float64(n))
		r.Numbers[fmt.Sprintf("ms_n%d", n)] = per * 1000
	}
	return r, nil
}

// randomPartitions builds an n-server partitioning by random splits.
func randomPartitions(n int, seed int64) ([]space.Partition, error) {
	m, err := space.NewMap(World, 1)
	if err != nil {
		return nil, err
	}
	rnd := rand.New(rand.NewSource(seed))
	var gen id.Generator
	gen.NextServer()
	live := []id.ServerID{1}
	for len(live) < n {
		victim := live[rnd.Intn(len(live))]
		child := gen.NextServer()
		if _, _, err := m.Split(victim, child, space.SplitToLeft{}); err != nil {
			return nil, err
		}
		live = append(live, child)
	}
	return m.Partitions(), nil
}

// nowMonotonic returns seconds on a monotonic clock.
func nowMonotonic() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}

// RunUserStudy executes E4, the user-study proxy: compare the response
// latency distribution of a quiet run against a run with splits. The
// paper's finding — "game players did not perceive any significant
// Matrix-induced performance degradation" — translates to the p95 latency
// staying in the same regime despite server switches.
func RunUserStudy(ctx context.Context, runner Runner, seed int64) (*Report, error) {
	cfg := func(script game.Script, servers int) sim.Config {
		return sim.Config{
			Profile:            game.Bzflag(),
			World:              World,
			Seed:               seed,
			DurationSeconds:    120,
			MaxServers:         servers,
			ServiceRatePerTick: 400, // provisioned fleet: transparency, not saturation, is under test
			BasePopulation:     150,
			Script:             script,
			// Steady-state gameplay only: the paper's study rated ongoing
			// play, not the instant 400 players materialize in one tick.
			LatencyIgnoreBeforeSeconds: 45,
			LoadPolicy:                 load.Config{OverloadQueue: 1500},
		}
	}
	script := game.Script{
		{At: 20, Kind: game.EventJoin, Count: 400, Center: geom.Pt(800, 300), Spread: 120, Tag: "hot"},
		{At: 90, Kind: game.EventLeave, Count: 400, Tag: "hot"},
	}
	results, err := runner.RunConfigs(ctx, []sim.Config{cfg(nil, 1), cfg(script, 8)})
	if err != nil {
		return nil, err
	}
	quiet, busy := results[0], results[1]
	r := &Report{ID: "E4", Title: "user-study proxy — latency transparency across splits", Numbers: map[string]float64{}}
	r.addf("%-18s %10s %10s %10s %10s", "condition", "p50(ms)", "p95(ms)", "p99(ms)", "switches")
	r.addf("%-18s %10.1f %10.1f %10.1f %10d", "quiet (no splits)",
		quiet.Latency.Quantile(0.5), quiet.Latency.Quantile(0.95), quiet.Latency.Quantile(0.99), quiet.SwitchLatency.Count())
	r.addf("%-18s %10.1f %10.1f %10.1f %10d", "hotspot (splits)",
		busy.Latency.Quantile(0.5), busy.Latency.Quantile(0.95), busy.Latency.Quantile(0.99), busy.SwitchLatency.Count())
	r.Numbers["quiet_p95"] = quiet.Latency.Quantile(0.95)
	r.Numbers["busy_p95"] = busy.Latency.Quantile(0.95)
	r.Numbers["busy_switches"] = float64(busy.SwitchLatency.Count())
	splits, _ := countEvents(busy)
	r.Numbers["busy_splits"] = float64(splits)
	return r, nil
}

// RunAsymptotic executes E5: the §4.2 scaling model sweep.
func RunAsymptotic() *Report {
	m := analysis.Model{
		WorldArea:         1e8,
		Servers:           10000,
		Radius:            5,
		UpdatesPerSec:     5,
		PacketBytes:       100,
		ServerCapacityBps: 125e6,
	}
	r := &Report{ID: "E5", Title: "asymptotic analysis — scaling limits (§4.2)", Numbers: map[string]float64{}}
	r.addf("%-10s %16s %16s %14s", "servers", "max players", "overlap frac", "inter share")
	counts := []int{100, 1000, 10000, 100000}
	servers, players, fracs := m.SweepServers(counts)
	for i := range servers {
		mm := m
		mm.Servers = servers[i]
		share := mm.InterServerShare(players[i])
		r.addf("%-10d %16.0f %16.4f %14.4f", servers[i], players[i], fracs[i], share)
	}
	r.Numbers["players_at_10k"] = players[2]
	// Show statement (b): capacity is the binding limit.
	m2 := m
	m2.ServerCapacityBps *= 2
	r.addf("2x I/O capacity at 10k servers: %.0f -> %.0f max players",
		m.MaxPopulation(), m2.MaxPopulation())
	r.Numbers["players_2x_capacity"] = m2.MaxPopulation()
	return r
}
