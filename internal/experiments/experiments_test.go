package experiments

import (
	"context"
	"strings"
	"testing"

	"matrix/internal/sim"
)

// runScaledFigure2 runs a shortened Figure 2 (first hotspot only) so unit
// tests stay fast; the full 300-second run is exercised by the repository
// benchmarks.
func runScaledFigure2(t *testing.T) *sim.Result {
	t.Helper()
	cfg := Figure2Config(7)
	cfg.DurationSeconds = 60
	s, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFigure2Reports(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled Figure 2 still simulates 60 seconds")
	}
	t.Parallel()
	res := runScaledFigure2(t)
	a := Figure2a(res)
	if a.ID != "E1a" || len(a.Lines) == 0 {
		t.Fatalf("E1a report empty: %+v", a)
	}
	if a.Numbers["peak_servers"] < 2 {
		t.Errorf("hotspot must engage extra servers: %+v", a.Numbers)
	}
	if a.Numbers["splits"] < 1 {
		t.Errorf("no splits recorded: %+v", a.Numbers)
	}
	b := Figure2b(res)
	if b.ID != "E1b" || len(b.Lines) == 0 {
		t.Fatalf("E1b report empty: %+v", b)
	}
	// The queue must spike when the hotspot lands and be relieved by the
	// splits (the headline of the paper's Figure 2b).
	if b.Numbers["peak_queue"] <= 0 {
		t.Errorf("no queue spike recorded: %+v", b.Numbers)
	}
	if b.Numbers["final_queue"] >= b.Numbers["peak_queue"] {
		t.Errorf("queue not relieved: %+v", b.Numbers)
	}
	if !strings.Contains(a.String(), "E1a") {
		t.Error("String() must include the ID")
	}
}

func TestSwitchingMicro(t *testing.T) {
	t.Parallel()
	r, err := RunSwitchingMicro(context.Background(), Runner{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Numbers["switches"] == 0 {
		t.Fatalf("no switches measured: %+v", r.Numbers)
	}
	// Switching latency must be small relative to the 1s load-report
	// cadence that drives splits — the paper calls it "acceptable".
	if r.Numbers["p95_ms"] > 2000 {
		t.Errorf("switching p95 = %v ms", r.Numbers["p95_ms"])
	}
}

func TestTrafficMicroLinearInOverlap(t *testing.T) {
	t.Parallel()
	r, err := RunTrafficMicro(context.Background(), Runner{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Forwarded traffic must grow with the radius (overlap area), roughly
	// linearly: the paper's E3c claim.
	p10 := r.Numbers["fwd_packets_r10"]
	p40 := r.Numbers["fwd_packets_r40"]
	p80 := r.Numbers["fwd_packets_r80"]
	if !(p80 > p40 && p40 > p10) {
		t.Fatalf("traffic not increasing with radius: %v %v %v", p10, p40, p80)
	}
	a10 := r.Numbers["overlap_area_r10"]
	a40 := r.Numbers["overlap_area_r40"]
	if a40 != 4*a10 {
		t.Errorf("overlap area should scale linearly with R: %v vs %v", a10, a40)
	}
	// Linearity check: packets per overlap area within a factor 3 across
	// the sweep (crowd density is uniform over the band).
	r10 := p10 / a10
	r40 := p40 / a40
	if r40 > 3*r10 || r10 > 3*r40 {
		t.Errorf("traffic/overlap ratio drifts: %v vs %v", r10, r40)
	}
}

func TestAsymptoticReport(t *testing.T) {
	r := RunAsymptotic()
	if r.Numbers["players_at_10k"] < 1e6 {
		t.Errorf("paper claim >1M players at 10k servers failed: %v", r.Numbers["players_at_10k"])
	}
	if r.Numbers["players_2x_capacity"] <= r.Numbers["players_at_10k"] {
		t.Errorf("capacity must be the binding limit: %+v", r.Numbers)
	}
	if len(r.Lines) < 4 {
		t.Errorf("sweep too short: %+v", r.Lines)
	}
}

func TestUserStudyTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("user study runs two 120s simulations")
	}
	t.Parallel()
	r, err := RunUserStudy(context.Background(), Runner{}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if r.Numbers["busy_splits"] == 0 || r.Numbers["busy_switches"] == 0 {
		t.Fatalf("busy run produced no splits/switches: %+v", r.Numbers)
	}
	// Transparency: the busy run's p95 must stay within a small factor of
	// the quiet run's (player-imperceptible degradation).
	quiet, busy := r.Numbers["quiet_p95"], r.Numbers["busy_p95"]
	if busy > quiet+150 {
		t.Errorf("splits degraded p95 by more than 150ms: quiet=%v busy=%v", quiet, busy)
	}
}

func TestStaticVsMatrixReport(t *testing.T) {
	if testing.Short() {
		t.Skip("E2 runs six 120s simulations")
	}
	t.Parallel()
	r, err := RunStaticVsMatrix(context.Background(), Runner{}, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, gameName := range []string{"bzflag", "daimonin", "quake2"} {
		sDrop := r.Numbers[gameName+"/static/dropped"]
		mDrop := r.Numbers[gameName+"/matrix/dropped"]
		if mDrop > sDrop {
			t.Errorf("%s: matrix dropped more than static (%v vs %v)", gameName, mDrop, sDrop)
		}
		if r.Numbers[gameName+"/matrix/peak_servers"] <= r.Numbers[gameName+"/static/peak_servers"] {
			t.Errorf("%s: matrix did not deploy extra servers", gameName)
		}
	}
}
