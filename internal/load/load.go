// Package load implements Matrix's load-management *mechanism*: the
// Tracker holds one server's view of its own and its children's load and
// maintains the anti-oscillation bookkeeping (split cooldown anchor,
// per-child combined-under dwell timers). The *decisions* — should this
// server split now, may this child be reclaimed — are delegated to an
// internal/policy.Policy; the default "paper" policy reproduces the
// paper's experiment thresholds ("a server is overloaded when it has
// 300+ clients", reclaimed children are "underloaded (< 150 clients)")
// and its "simple heuristics (not described) to prevent oscillations".
package load

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"matrix/internal/clock"
	"matrix/internal/id"
	"matrix/internal/policy"
)

// Config tunes the split/reclaim policy.
type Config struct {
	// OverloadClients is the client count at which a server is overloaded
	// and tries to split (paper: 300).
	OverloadClients int
	// UnderloadClients is the client count below which a server counts as
	// underloaded and becomes a reclamation candidate (paper: 150).
	UnderloadClients int
	// OverloadQueue, when positive, also marks the server overloaded when
	// its receive-queue length reaches this value — the paper's "or via
	// system performance measurements" trigger. It catches overloads that
	// client counts miss (e.g. heavy inter-server forwarding near a
	// partition corner). Zero disables the queue trigger.
	OverloadQueue int
	// SplitCooldown is the minimum interval between two splits by the same
	// server, preventing split storms while redirected clients are still in
	// flight.
	SplitCooldown time.Duration
	// ReclaimDwell is how long the combined parent+child load must stay
	// under the reclaim headroom before the parent actually reclaims,
	// preventing split/reclaim oscillation at the threshold boundary.
	ReclaimDwell time.Duration
	// ReclaimHeadroom is the fraction of OverloadClients that the combined
	// parent+child load must stay below for a reclaim to be safe. A merge
	// that immediately re-overloads the parent would oscillate.
	ReclaimHeadroom float64
}

// DefaultConfig returns the paper-aligned policy: overload at 300 clients,
// underload below 150, 2s split cooldown, 3s reclaim dwell, and a merged
// load ceiling of 80% of the overload threshold.
func DefaultConfig() Config {
	return Config{
		OverloadClients:  300,
		UnderloadClients: 150,
		SplitCooldown:    2 * time.Second,
		ReclaimDwell:     3 * time.Second,
		ReclaimHeadroom:  0.8,
	}
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.OverloadClients <= 0 {
		c.OverloadClients = d.OverloadClients
	}
	if c.UnderloadClients <= 0 {
		c.UnderloadClients = d.UnderloadClients
	}
	if c.SplitCooldown <= 0 {
		c.SplitCooldown = d.SplitCooldown
	}
	if c.ReclaimDwell <= 0 {
		c.ReclaimDwell = d.ReclaimDwell
	}
	if c.ReclaimHeadroom <= 0 || c.ReclaimHeadroom > 1 {
		c.ReclaimHeadroom = d.ReclaimHeadroom
	}
	return c
}

// Validate rejects configurations that defaults cannot repair. A negative
// OverloadQueue is a typo (zero disables the queue trigger, positive
// enables it), and an underload threshold above the overload threshold
// would mark every freshly split child reclaimable the moment it spawns,
// so the fleet would thrash split/reclaim forever.
func (c Config) Validate() error {
	if c.OverloadQueue < 0 {
		return fmt.Errorf("load: OverloadQueue must be zero (queue trigger off) or positive, got %d", c.OverloadQueue)
	}
	e := c.withDefaults()
	if e.UnderloadClients > e.OverloadClients {
		return fmt.Errorf("load: UnderloadClients (%d) exceeds OverloadClients (%d); a server would be underloaded and overloaded at once", e.UnderloadClients, e.OverloadClients)
	}
	return nil
}

// sanitized validates cfg and fills defaults.
func (c Config) sanitized() (Config, error) {
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c.withDefaults(), nil
}

// thresholds is the policy-visible view of the (sanitized) config.
func (c Config) thresholds() policy.Thresholds {
	return policy.Thresholds{
		OverloadClients:  c.OverloadClients,
		UnderloadClients: c.UnderloadClients,
		OverloadQueue:    c.OverloadQueue,
		SplitCooldown:    c.SplitCooldown,
		ReclaimDwell:     c.ReclaimDwell,
		ReclaimHeadroom:  c.ReclaimHeadroom,
	}
}

// Tracker holds one Matrix server's view of its own and its children's load
// and routes the two topology questions — ShouldSplit and ReclaimCandidate
// — through its policy. It is safe for concurrent use; the policy instance
// is called only under the tracker's mutex.
type Tracker struct {
	mu         sync.Mutex
	cfg        Config
	clk        clock.Clock
	pol        policy.Policy
	clients    int
	queueLen   int
	lastSplit  time.Time
	haveSplit  bool
	childLoad  map[id.ServerID]int
	childQueue map[id.ServerID]int
	belowSince map[id.ServerID]time.Time
	// Verdict caches for the decision audit: the flight recorder reads
	// them when the coordinator's reply lands (same tick), so the audit
	// reports exactly the inputs the policy read. Not serialized.
	splitVerdict    policy.Verdict
	reclaimVerdicts map[id.ServerID]policy.Verdict
}

// NewTracker creates a Tracker with the given thresholds; a nil clk uses
// the wall clock, a nil pol the default paper policy. The config is
// validated (see Config.Validate) and defaults are filled in.
func NewTracker(cfg Config, clk clock.Clock, pol policy.Policy) (*Tracker, error) {
	sc, err := cfg.sanitized()
	if err != nil {
		return nil, err
	}
	if clk == nil {
		clk = clock.Wall{}
	}
	if pol == nil {
		if pol, err = policy.New(""); err != nil {
			return nil, err
		}
	}
	return &Tracker{
		cfg:             sc,
		clk:             clk,
		pol:             pol,
		childLoad:       make(map[id.ServerID]int),
		childQueue:      make(map[id.ServerID]int),
		belowSince:      make(map[id.ServerID]time.Time),
		reclaimVerdicts: make(map[id.ServerID]policy.Verdict),
	}, nil
}

// Config returns the sanitized policy in effect.
func (t *Tracker) Config() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg
}

// SetLoad records this server's current client count and receive-queue
// length (from the game server's periodic load report). Because the reclaim
// condition depends on the *combined* parent+child load, the dwell timers of
// all children are re-evaluated here too.
func (t *Tracker) SetLoad(clients, queueLen int) {
	t.mu.Lock()
	t.clients = clients
	t.queueLen = queueLen
	for child := range t.childLoad {
		t.refreshDwellLocked(child)
	}
	t.mu.Unlock()
}

// refreshDwellLocked starts or resets child's dwell timer according to the
// current combined-load condition.
func (t *Tracker) refreshDwellLocked(child id.ServerID) {
	if t.combinedUnderLocked(child) {
		if _, ok := t.belowSince[child]; !ok {
			t.belowSince[child] = t.clk.Now()
		}
	} else {
		delete(t.belowSince, child)
	}
}

// Clients returns the last reported client count.
func (t *Tracker) Clients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients
}

// QueueLen returns the last reported queue length.
func (t *Tracker) QueueLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queueLen
}

// SetChildLoad records a child's reported client count and queue length
// (the coordinator relays children's load reports to parents so reclaim
// decisions stay local).
func (t *Tracker) SetChildLoad(child id.ServerID, clients, queueLen int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.childLoad[child] = clients
	t.childQueue[child] = queueLen
	// Maintain the dwell timer: reset it whenever the combined load pops
	// back over the reclaim ceiling.
	t.refreshDwellLocked(child)
}

// ForgetChild drops all state about child (after a reclaim or child death).
func (t *Tracker) ForgetChild(child id.ServerID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.childLoad, child)
	delete(t.childQueue, child)
	delete(t.belowSince, child)
	delete(t.reclaimVerdicts, child)
}

// Overloaded reports whether this server is at or over the split threshold.
func (t *Tracker) Overloaded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients >= t.cfg.OverloadClients
}

// Underloaded reports whether this server is below the underload threshold
// (making it a candidate for being reclaimed by its parent).
func (t *Tracker) Underloaded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients < t.cfg.UnderloadClients
}

// ShouldSplit asks the policy whether the server should request a split
// now, given the latest load report and the split history. The verdict
// (with the inputs the policy read) is cached for the decision audit.
func (t *Tracker) ShouldSplit() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	v := t.pol.ShouldSplit(policy.LoadView{
		Now:       t.clk.Now(),
		Clients:   t.clients,
		QueueLen:  t.queueLen,
		HaveSplit: t.haveSplit,
		LastSplit: t.lastSplit,
		Cfg:       t.cfg.thresholds(),
	})
	t.splitVerdict = v
	return v.Act
}

// SplitVerdict returns the policy's verdict from the most recent
// ShouldSplit call (for the decision audit).
func (t *Tracker) SplitVerdict() policy.Verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.splitVerdict
}

// NoteSplit records that a split happened, starting the cooldown and
// feeding the churn event back to the policy.
func (t *Tracker) NoteSplit() {
	t.mu.Lock()
	t.lastSplit = t.clk.Now()
	t.haveSplit = true
	t.pol.NoteEvent(policy.Event{Now: t.lastSplit, Kind: "split"})
	t.mu.Unlock()
}

// NoteReclaim records that child was reclaimed (churn feedback for
// cost-aware policies).
func (t *Tracker) NoteReclaim(child id.ServerID) {
	t.mu.Lock()
	t.pol.NoteEvent(policy.Event{Now: t.clk.Now(), Kind: "reclaim", Child: child})
	t.mu.Unlock()
}

// combinedUnderLocked reports whether parent+child load is under the
// reclaim ceiling and the child is individually underloaded. When the
// queue-based overload trigger is enabled, both queues must also be well
// under it: a merge that reassembles an overloaded queue would immediately
// re-split (oscillation).
func (t *Tracker) combinedUnderLocked(child id.ServerID) bool {
	cl, ok := t.childLoad[child]
	if !ok {
		return false
	}
	if cl >= t.cfg.UnderloadClients {
		return false
	}
	if t.cfg.OverloadQueue > 0 {
		quiet := t.cfg.OverloadQueue / 4
		if t.queueLen > quiet || t.childQueue[child] > quiet {
			return false
		}
	}
	ceiling := int(float64(t.cfg.OverloadClients) * t.cfg.ReclaimHeadroom)
	return t.clients+cl < ceiling
}

// ReclaimCandidate asks the policy whether child can be reclaimed now.
// The tracker supplies the mechanism's combined-under condition and the
// child's quiet-streak anchor; the verdict is cached for the audit.
func (t *Tracker) ReclaimCandidate(child id.ServerID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	cv := policy.ChildView{ID: child, Below: t.combinedUnderLocked(child)}
	if cl, ok := t.childLoad[child]; ok {
		cv.Known = true
		cv.Clients = cl
		cv.QueueLen = t.childQueue[child]
	}
	if since, ok := t.belowSince[child]; ok {
		cv.BelowSince = since
	}
	v := t.pol.ShouldReclaim(policy.FamilyView{
		Now:      t.clk.Now(),
		Clients:  t.clients,
		QueueLen: t.queueLen,
		Child:    cv,
		Cfg:      t.cfg.thresholds(),
	})
	t.reclaimVerdicts[child] = v
	return v.Act
}

// ReclaimVerdict returns the policy's verdict from the most recent
// ReclaimCandidate call for child (for the decision audit).
func (t *Tracker) ReclaimVerdict(child id.ServerID) policy.Verdict {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reclaimVerdicts[child]
}

// Policy returns the tracker's policy name.
func (t *Tracker) Policy() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pol.Name()
}

// PolicyState snapshots the policy's internal state (nil for stateless
// policies such as paper).
func (t *Tracker) PolicyState() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pol.State()
}

// RestorePolicyState rebuilds the policy's internal state from a
// PolicyState snapshot.
func (t *Tracker) RestorePolicyState(b []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pol.RestoreState(b)
}

// ChildState is one child's snapshot inside TrackerState.
type ChildState struct {
	Child    id.ServerID
	Clients  int
	QueueLen int
	// Below reports whether the dwell timer is running; BelowSinceNs is its
	// start, nanoseconds since the Unix epoch on the tracker's clock.
	Below        bool
	BelowSinceNs int64
}

// TrackerState is a Tracker's serializable snapshot (policy config and clock
// excluded — they are construction inputs). Children are sorted by ID.
type TrackerState struct {
	Clients     int
	QueueLen    int
	HaveSplit   bool
	LastSplitNs int64
	Children    []ChildState
}

// State snapshots the tracker's mutable state.
func (t *Tracker) State() TrackerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TrackerState{
		Clients:   t.clients,
		QueueLen:  t.queueLen,
		HaveSplit: t.haveSplit,
	}
	if t.haveSplit {
		st.LastSplitNs = t.lastSplit.UnixNano()
	}
	kids := make([]id.ServerID, 0, len(t.childLoad))
	for c := range t.childLoad {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	for _, c := range kids {
		cs := ChildState{Child: c, Clients: t.childLoad[c], QueueLen: t.childQueue[c]}
		if since, ok := t.belowSince[c]; ok {
			cs.Below = true
			cs.BelowSinceNs = since.UnixNano()
		}
		st.Children = append(st.Children, cs)
	}
	return st
}

// RestoreState overwrites the tracker's mutable state from a snapshot,
// keeping its policy config and clock. Dwell timers resume exactly where
// they were.
func (t *Tracker) RestoreState(st TrackerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clients = st.Clients
	t.queueLen = st.QueueLen
	t.haveSplit = st.HaveSplit
	t.lastSplit = time.Time{}
	if st.HaveSplit {
		t.lastSplit = time.Unix(0, st.LastSplitNs)
	}
	t.childLoad = make(map[id.ServerID]int, len(st.Children))
	t.childQueue = make(map[id.ServerID]int, len(st.Children))
	t.belowSince = make(map[id.ServerID]time.Time, len(st.Children))
	t.splitVerdict = policy.Verdict{}
	t.reclaimVerdicts = make(map[id.ServerID]policy.Verdict, len(st.Children))
	for _, cs := range st.Children {
		t.childLoad[cs.Child] = cs.Clients
		t.childQueue[cs.Child] = cs.QueueLen
		if cs.Below {
			t.belowSince[cs.Child] = time.Unix(0, cs.BelowSinceNs)
		}
	}
}

// ChildLoad returns the last reported load of child and whether it is
// known.
func (t *Tracker) ChildLoad(child id.ServerID) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cl, ok := t.childLoad[child]
	return cl, ok
}
