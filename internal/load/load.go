// Package load implements Matrix's load-management policy: when a server is
// overloaded enough to split, and when a parent may reclaim an underloaded
// child. The thresholds follow the paper's experiment ("a server is
// overloaded when it has 300+ clients", reclaimed children are "underloaded
// (< 150 clients)"), and the package makes concrete the "simple heuristics
// (not described) to prevent oscillations and ensure stability in the
// splitting / reclamation process".
package load

import (
	"sort"
	"sync"
	"time"

	"matrix/internal/clock"
	"matrix/internal/id"
)

// Config tunes the split/reclaim policy.
type Config struct {
	// OverloadClients is the client count at which a server is overloaded
	// and tries to split (paper: 300).
	OverloadClients int
	// UnderloadClients is the client count below which a server counts as
	// underloaded and becomes a reclamation candidate (paper: 150).
	UnderloadClients int
	// OverloadQueue, when positive, also marks the server overloaded when
	// its receive-queue length reaches this value — the paper's "or via
	// system performance measurements" trigger. It catches overloads that
	// client counts miss (e.g. heavy inter-server forwarding near a
	// partition corner). Zero disables the queue trigger.
	OverloadQueue int
	// SplitCooldown is the minimum interval between two splits by the same
	// server, preventing split storms while redirected clients are still in
	// flight.
	SplitCooldown time.Duration
	// ReclaimDwell is how long the combined parent+child load must stay
	// under the reclaim headroom before the parent actually reclaims,
	// preventing split/reclaim oscillation at the threshold boundary.
	ReclaimDwell time.Duration
	// ReclaimHeadroom is the fraction of OverloadClients that the combined
	// parent+child load must stay below for a reclaim to be safe. A merge
	// that immediately re-overloads the parent would oscillate.
	ReclaimHeadroom float64
}

// DefaultConfig returns the paper-aligned policy: overload at 300 clients,
// underload below 150, 2s split cooldown, 3s reclaim dwell, and a merged
// load ceiling of 80% of the overload threshold.
func DefaultConfig() Config {
	return Config{
		OverloadClients:  300,
		UnderloadClients: 150,
		SplitCooldown:    2 * time.Second,
		ReclaimDwell:     3 * time.Second,
		ReclaimHeadroom:  0.8,
	}
}

// sanitized returns cfg with zero fields replaced by defaults.
func (c Config) sanitized() Config {
	d := DefaultConfig()
	if c.OverloadClients <= 0 {
		c.OverloadClients = d.OverloadClients
	}
	if c.UnderloadClients <= 0 {
		c.UnderloadClients = d.UnderloadClients
	}
	if c.UnderloadClients > c.OverloadClients {
		c.UnderloadClients = c.OverloadClients / 2
	}
	if c.SplitCooldown <= 0 {
		c.SplitCooldown = d.SplitCooldown
	}
	if c.ReclaimDwell <= 0 {
		c.ReclaimDwell = d.ReclaimDwell
	}
	if c.ReclaimHeadroom <= 0 || c.ReclaimHeadroom > 1 {
		c.ReclaimHeadroom = d.ReclaimHeadroom
	}
	return c
}

// Tracker holds one Matrix server's view of its own and its children's load
// and answers the two policy questions: ShouldSplit and ReclaimCandidate.
// It is safe for concurrent use.
type Tracker struct {
	mu         sync.Mutex
	cfg        Config
	clk        clock.Clock
	clients    int
	queueLen   int
	lastSplit  time.Time
	haveSplit  bool
	childLoad  map[id.ServerID]int
	childQueue map[id.ServerID]int
	belowSince map[id.ServerID]time.Time
}

// NewTracker creates a Tracker with the given policy; a nil clk uses the
// wall clock.
func NewTracker(cfg Config, clk clock.Clock) *Tracker {
	if clk == nil {
		clk = clock.Wall{}
	}
	return &Tracker{
		cfg:        cfg.sanitized(),
		clk:        clk,
		childLoad:  make(map[id.ServerID]int),
		childQueue: make(map[id.ServerID]int),
		belowSince: make(map[id.ServerID]time.Time),
	}
}

// Config returns the sanitized policy in effect.
func (t *Tracker) Config() Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cfg
}

// SetLoad records this server's current client count and receive-queue
// length (from the game server's periodic load report). Because the reclaim
// condition depends on the *combined* parent+child load, the dwell timers of
// all children are re-evaluated here too.
func (t *Tracker) SetLoad(clients, queueLen int) {
	t.mu.Lock()
	t.clients = clients
	t.queueLen = queueLen
	for child := range t.childLoad {
		t.refreshDwellLocked(child)
	}
	t.mu.Unlock()
}

// refreshDwellLocked starts or resets child's dwell timer according to the
// current combined-load condition.
func (t *Tracker) refreshDwellLocked(child id.ServerID) {
	if t.combinedUnderLocked(child) {
		if _, ok := t.belowSince[child]; !ok {
			t.belowSince[child] = t.clk.Now()
		}
	} else {
		delete(t.belowSince, child)
	}
}

// Clients returns the last reported client count.
func (t *Tracker) Clients() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients
}

// QueueLen returns the last reported queue length.
func (t *Tracker) QueueLen() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queueLen
}

// SetChildLoad records a child's reported client count and queue length
// (the coordinator relays children's load reports to parents so reclaim
// decisions stay local).
func (t *Tracker) SetChildLoad(child id.ServerID, clients, queueLen int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.childLoad[child] = clients
	t.childQueue[child] = queueLen
	// Maintain the dwell timer: reset it whenever the combined load pops
	// back over the reclaim ceiling.
	t.refreshDwellLocked(child)
}

// ForgetChild drops all state about child (after a reclaim or child death).
func (t *Tracker) ForgetChild(child id.ServerID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.childLoad, child)
	delete(t.childQueue, child)
	delete(t.belowSince, child)
}

// Overloaded reports whether this server is at or over the split threshold.
func (t *Tracker) Overloaded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients >= t.cfg.OverloadClients
}

// Underloaded reports whether this server is below the underload threshold
// (making it a candidate for being reclaimed by its parent).
func (t *Tracker) Underloaded() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.clients < t.cfg.UnderloadClients
}

// ShouldSplit reports whether the server should request a split now:
// overloaded (by client count, or by queue depth when the queue trigger is
// enabled) and past the split cooldown.
func (t *Tracker) ShouldSplit() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	overloaded := t.clients >= t.cfg.OverloadClients ||
		(t.cfg.OverloadQueue > 0 && t.queueLen >= t.cfg.OverloadQueue)
	if !overloaded {
		return false
	}
	if t.haveSplit && t.clk.Since(t.lastSplit) < t.cfg.SplitCooldown {
		return false
	}
	return true
}

// NoteSplit records that a split happened, starting the cooldown.
func (t *Tracker) NoteSplit() {
	t.mu.Lock()
	t.lastSplit = t.clk.Now()
	t.haveSplit = true
	t.mu.Unlock()
}

// combinedUnderLocked reports whether parent+child load is under the
// reclaim ceiling and the child is individually underloaded. When the
// queue-based overload trigger is enabled, both queues must also be well
// under it: a merge that reassembles an overloaded queue would immediately
// re-split (oscillation).
func (t *Tracker) combinedUnderLocked(child id.ServerID) bool {
	cl, ok := t.childLoad[child]
	if !ok {
		return false
	}
	if cl >= t.cfg.UnderloadClients {
		return false
	}
	if t.cfg.OverloadQueue > 0 {
		quiet := t.cfg.OverloadQueue / 4
		if t.queueLen > quiet || t.childQueue[child] > quiet {
			return false
		}
	}
	ceiling := int(float64(t.cfg.OverloadClients) * t.cfg.ReclaimHeadroom)
	return t.clients+cl < ceiling
}

// ReclaimCandidate reports whether child can be reclaimed now: it has been
// underloaded, with combined load under the headroom ceiling, for at least
// the dwell period.
func (t *Tracker) ReclaimCandidate(child id.ServerID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.combinedUnderLocked(child) {
		return false
	}
	since, ok := t.belowSince[child]
	if !ok {
		return false
	}
	return t.clk.Since(since) >= t.cfg.ReclaimDwell
}

// ChildState is one child's snapshot inside TrackerState.
type ChildState struct {
	Child    id.ServerID
	Clients  int
	QueueLen int
	// Below reports whether the dwell timer is running; BelowSinceNs is its
	// start, nanoseconds since the Unix epoch on the tracker's clock.
	Below        bool
	BelowSinceNs int64
}

// TrackerState is a Tracker's serializable snapshot (policy config and clock
// excluded — they are construction inputs). Children are sorted by ID.
type TrackerState struct {
	Clients     int
	QueueLen    int
	HaveSplit   bool
	LastSplitNs int64
	Children    []ChildState
}

// State snapshots the tracker's mutable state.
func (t *Tracker) State() TrackerState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := TrackerState{
		Clients:   t.clients,
		QueueLen:  t.queueLen,
		HaveSplit: t.haveSplit,
	}
	if t.haveSplit {
		st.LastSplitNs = t.lastSplit.UnixNano()
	}
	kids := make([]id.ServerID, 0, len(t.childLoad))
	for c := range t.childLoad {
		kids = append(kids, c)
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	for _, c := range kids {
		cs := ChildState{Child: c, Clients: t.childLoad[c], QueueLen: t.childQueue[c]}
		if since, ok := t.belowSince[c]; ok {
			cs.Below = true
			cs.BelowSinceNs = since.UnixNano()
		}
		st.Children = append(st.Children, cs)
	}
	return st
}

// RestoreState overwrites the tracker's mutable state from a snapshot,
// keeping its policy config and clock. Dwell timers resume exactly where
// they were.
func (t *Tracker) RestoreState(st TrackerState) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clients = st.Clients
	t.queueLen = st.QueueLen
	t.haveSplit = st.HaveSplit
	t.lastSplit = time.Time{}
	if st.HaveSplit {
		t.lastSplit = time.Unix(0, st.LastSplitNs)
	}
	t.childLoad = make(map[id.ServerID]int, len(st.Children))
	t.childQueue = make(map[id.ServerID]int, len(st.Children))
	t.belowSince = make(map[id.ServerID]time.Time, len(st.Children))
	for _, cs := range st.Children {
		t.childLoad[cs.Child] = cs.Clients
		t.childQueue[cs.Child] = cs.QueueLen
		if cs.Below {
			t.belowSince[cs.Child] = time.Unix(0, cs.BelowSinceNs)
		}
	}
}

// ChildLoad returns the last reported load of child and whether it is
// known.
func (t *Tracker) ChildLoad(child id.ServerID) (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cl, ok := t.childLoad[child]
	return cl, ok
}
