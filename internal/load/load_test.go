package load

import (
	"strings"
	"testing"
	"time"

	"matrix/internal/clock"
)

func newTestTracker(cfg Config) (*Tracker, *clock.Virtual) {
	clk := clock.NewVirtual(time.Unix(0, 0))
	tr, err := NewTracker(cfg, clk, nil)
	if err != nil {
		panic(err)
	}
	return tr, clk
}

func TestDefaultsMatchPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.OverloadClients != 300 {
		t.Errorf("OverloadClients = %d, want 300 (paper Fig.2 caption)", cfg.OverloadClients)
	}
	if cfg.UnderloadClients != 150 {
		t.Errorf("UnderloadClients = %d, want 150 (paper Fig.2 caption)", cfg.UnderloadClients)
	}
}

func TestSanitizeZeroConfig(t *testing.T) {
	tr, err := NewTracker(Config{}, nil, nil)
	if err != nil {
		t.Fatalf("NewTracker(zero config) = %v", err)
	}
	cfg := tr.Config()
	if cfg.OverloadClients != 300 || cfg.UnderloadClients != 150 {
		t.Errorf("zero config not defaulted: %+v", cfg)
	}
	if cfg.SplitCooldown <= 0 || cfg.ReclaimHeadroom <= 0 {
		t.Errorf("timings not defaulted: %+v", cfg)
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr string // substring of the error, "" = valid
	}{
		{"zero defaults", Config{}, ""},
		{"paper defaults", DefaultConfig(), ""},
		{"equal thresholds", Config{OverloadClients: 200, UnderloadClients: 200}, ""},
		{"queue trigger off", Config{OverloadQueue: 0}, ""},
		{"queue trigger on", Config{OverloadQueue: 1500}, ""},
		{
			"inverted thresholds",
			Config{OverloadClients: 100, UnderloadClients: 500},
			"UnderloadClients (500) exceeds OverloadClients (100)",
		},
		{
			// Only the explicit overload threshold is given: the underload
			// default (150) must be checked against it, not silently folded.
			"default underload above explicit overload",
			Config{OverloadClients: 100},
			"UnderloadClients (150) exceeds OverloadClients (100)",
		},
		{
			"negative overload queue",
			Config{OverloadQueue: -1},
			"OverloadQueue must be zero (queue trigger off) or positive",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				if _, trErr := NewTracker(tt.cfg, nil, nil); trErr != nil {
					t.Fatalf("NewTracker() = %v, want nil", trErr)
				}
				return
			}
			if err == nil {
				t.Fatalf("Validate() = nil, want error containing %q", tt.wantErr)
			}
			if !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %q, want it to contain %q", err, tt.wantErr)
			}
			// The constructor must refuse the same configs Validate refuses.
			if _, trErr := NewTracker(tt.cfg, nil, nil); trErr == nil {
				t.Fatal("NewTracker() accepted a config Validate rejects")
			}
		})
	}
}

func TestOverloadedUnderloaded(t *testing.T) {
	tr, _ := newTestTracker(DefaultConfig())
	tests := []struct {
		clients             int
		overload, underload bool
	}{
		{0, false, true},
		{149, false, true},
		{150, false, false},
		{299, false, false},
		{300, true, false},
		{600, true, false},
	}
	for _, tt := range tests {
		tr.SetLoad(tt.clients, 0)
		if got := tr.Overloaded(); got != tt.overload {
			t.Errorf("clients=%d Overloaded=%v want %v", tt.clients, got, tt.overload)
		}
		if got := tr.Underloaded(); got != tt.underload {
			t.Errorf("clients=%d Underloaded=%v want %v", tt.clients, got, tt.underload)
		}
	}
}

func TestShouldSplitCooldown(t *testing.T) {
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(400, 0)
	if !tr.ShouldSplit() {
		t.Fatal("overloaded fresh tracker must split")
	}
	tr.NoteSplit()
	if tr.ShouldSplit() {
		t.Fatal("must not split again inside cooldown")
	}
	clk.Advance(cfg.SplitCooldown)
	if !tr.ShouldSplit() {
		t.Fatal("must split again after cooldown")
	}
	// Not overloaded => never split, even past cooldown.
	tr.SetLoad(100, 0)
	if tr.ShouldSplit() {
		t.Fatal("non-overloaded server must not split")
	}
}

func TestReclaimRequiresDwell(t *testing.T) {
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(50, 0)
	tr.SetChildLoad(2, 40, 0)
	if tr.ReclaimCandidate(2) {
		t.Fatal("reclaim before dwell must be denied")
	}
	clk.Advance(cfg.ReclaimDwell)
	// Dwell is measured from the SetChildLoad that first went low; the
	// condition is re-evaluated on the next report.
	tr.SetChildLoad(2, 40, 0)
	if !tr.ReclaimCandidate(2) {
		t.Fatal("reclaim after dwell must be allowed")
	}
}

func TestReclaimDwellResetsOnSpike(t *testing.T) {
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(50, 0)
	tr.SetChildLoad(2, 40, 0)
	clk.Advance(cfg.ReclaimDwell / 2)
	tr.SetChildLoad(2, 200, 0) // child spikes above underload threshold
	clk.Advance(cfg.ReclaimDwell)
	tr.SetChildLoad(2, 40, 0) // low again, but dwell restarted
	if tr.ReclaimCandidate(2) {
		t.Fatal("dwell must restart after a spike")
	}
	clk.Advance(cfg.ReclaimDwell)
	if !tr.ReclaimCandidate(2) {
		t.Fatal("reclaim after fresh dwell must be allowed")
	}
}

func TestReclaimHeadroomCeiling(t *testing.T) {
	cfg := DefaultConfig() // ceiling = 0.8*300 = 240
	tr, clk := newTestTracker(cfg)
	// Child individually underloaded but merge would overload the parent.
	tr.SetLoad(220, 0)
	tr.SetChildLoad(2, 100, 0)
	clk.Advance(cfg.ReclaimDwell * 2)
	tr.SetChildLoad(2, 100, 0)
	if tr.ReclaimCandidate(2) {
		t.Fatal("merge exceeding headroom ceiling must be denied")
	}
	// Parent sheds load; now merge is safe after dwell.
	tr.SetLoad(100, 0)
	tr.SetChildLoad(2, 100, 0)
	clk.Advance(cfg.ReclaimDwell)
	tr.SetChildLoad(2, 100, 0)
	if !tr.ReclaimCandidate(2) {
		t.Fatal("safe merge must be allowed")
	}
}

func TestReclaimUnknownChild(t *testing.T) {
	tr, _ := newTestTracker(DefaultConfig())
	if tr.ReclaimCandidate(9) {
		t.Fatal("unknown child must not be reclaimable")
	}
}

func TestForgetChild(t *testing.T) {
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(10, 0)
	tr.SetChildLoad(2, 10, 0)
	clk.Advance(cfg.ReclaimDwell)
	tr.SetChildLoad(2, 10, 0)
	if !tr.ReclaimCandidate(2) {
		t.Fatal("setup: child should be reclaimable")
	}
	tr.ForgetChild(2)
	if tr.ReclaimCandidate(2) {
		t.Fatal("forgotten child must not be reclaimable")
	}
	if _, ok := tr.ChildLoad(2); ok {
		t.Fatal("forgotten child load must be gone")
	}
}

func TestChildLoadReadback(t *testing.T) {
	tr, _ := newTestTracker(DefaultConfig())
	tr.SetChildLoad(3, 123, 0)
	got, ok := tr.ChildLoad(3)
	if !ok || got != 123 {
		t.Fatalf("ChildLoad = %d,%v", got, ok)
	}
}

func TestQueueLenTracking(t *testing.T) {
	tr, _ := newTestTracker(DefaultConfig())
	tr.SetLoad(10, 55)
	if tr.QueueLen() != 55 {
		t.Errorf("QueueLen = %d", tr.QueueLen())
	}
	if tr.Clients() != 10 {
		t.Errorf("Clients = %d", tr.Clients())
	}
}

// TestNoOscillation simulates the boundary case the hysteresis exists for:
// load hovering exactly at the underload threshold must not produce
// alternating split/reclaim decisions.
func TestNoOscillation(t *testing.T) {
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	flips := 0
	last := false
	for i := 0; i < 100; i++ {
		// Child load oscillates right around the threshold every tick.
		childLoad := cfg.UnderloadClients - 1
		if i%2 == 0 {
			childLoad = cfg.UnderloadClients + 1
		}
		tr.SetLoad(50, 0)
		tr.SetChildLoad(2, childLoad, 0)
		clk.Advance(time.Second)
		cur := tr.ReclaimCandidate(2)
		if cur != last {
			flips++
		}
		last = cur
	}
	if flips > 0 {
		t.Errorf("reclaim decision flapped %d times; dwell must suppress oscillation", flips)
	}
}

func TestForgetChildMidDwellClearsTimer(t *testing.T) {
	// A child forgotten halfway through its dwell (e.g. it crashed and the
	// topology moved on) must not leave a stale dwell timer behind: if the
	// same child ID reappears, its dwell starts from scratch.
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(50, 0)
	tr.SetChildLoad(2, 40, 0)
	clk.Advance(cfg.ReclaimDwell / 2)
	tr.ForgetChild(2)

	// The child re-registers (a crash-recovered server re-adopting the
	// same ID) and reports low load again after more than the remaining
	// dwell has passed on the clock.
	clk.Advance(cfg.ReclaimDwell / 2)
	tr.SetChildLoad(2, 40, 0)
	if tr.ReclaimCandidate(2) {
		t.Fatal("re-learned child must dwell from scratch, not inherit the pre-forget timer")
	}
	clk.Advance(cfg.ReclaimDwell)
	tr.SetChildLoad(2, 40, 0)
	if !tr.ReclaimCandidate(2) {
		t.Fatal("re-learned child must become reclaimable after a full fresh dwell")
	}
}

func TestReSetChildLoadAfterForgetHighLoad(t *testing.T) {
	// Forget, then the child comes back hot: it must not be reclaimable,
	// and the old (low) load must not linger anywhere.
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(50, 0)
	tr.SetChildLoad(2, 40, 0)
	clk.Advance(cfg.ReclaimDwell * 2)
	tr.SetChildLoad(2, 40, 0)
	if !tr.ReclaimCandidate(2) {
		t.Fatal("setup: child should be reclaimable")
	}
	tr.ForgetChild(2)
	tr.SetChildLoad(2, 280, 0)
	if got, ok := tr.ChildLoad(2); !ok || got != 280 {
		t.Fatalf("ChildLoad = %d,%v; want 280,true", got, ok)
	}
	clk.Advance(cfg.ReclaimDwell * 3)
	tr.SetChildLoad(2, 280, 0)
	if tr.ReclaimCandidate(2) {
		t.Fatal("hot re-learned child must not be reclaimable however long it dwells")
	}
}

func TestForgetChildDoesNotDisturbSiblings(t *testing.T) {
	// Forgetting one child (crash scenarios forget mid-run) must leave a
	// sibling's dwell progress intact.
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(50, 0)
	tr.SetChildLoad(2, 40, 0)
	tr.SetChildLoad(3, 40, 0)
	clk.Advance(cfg.ReclaimDwell)
	tr.ForgetChild(2)
	tr.SetChildLoad(3, 40, 0)
	if !tr.ReclaimCandidate(3) {
		t.Fatal("sibling's completed dwell lost when another child was forgotten")
	}
}

func TestSetLoadKeepsForgottenChildForgotten(t *testing.T) {
	// SetLoad re-evaluates every known child's dwell; it must not
	// resurrect a forgotten child.
	cfg := DefaultConfig()
	tr, clk := newTestTracker(cfg)
	tr.SetLoad(50, 0)
	tr.SetChildLoad(2, 40, 0)
	tr.ForgetChild(2)
	tr.SetLoad(40, 0)
	clk.Advance(cfg.ReclaimDwell * 2)
	tr.SetLoad(40, 0)
	if tr.ReclaimCandidate(2) {
		t.Fatal("SetLoad resurrected a forgotten child")
	}
	if _, ok := tr.ChildLoad(2); ok {
		t.Fatal("forgotten child's load reappeared")
	}
}
