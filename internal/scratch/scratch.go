// Package scratch provides the reusable-slice idiom the hot paths share:
// a loop produces into a buffer, consumes it fully, and wants the
// capacity — but not the contents — kept for the next iteration. Using
// one helper keeps the three easy-to-miss details (empty on take, retain
// the grown array, clear stale elements) single-sourced instead of
// hand-copied at every site.
package scratch

// Buf holds a reusable slice. The zero value is ready to use. Not safe
// for concurrent use; each producing loop owns its own Buf.
type Buf[T any] struct{ buf []T }

// Take returns the buffer emptied, ready for appending. The caller must
// pass the grown result back through Done before the next Take.
func (b *Buf[T]) Take() []T { return b.buf[:0] }

// Done records used — the slice grown from Take's return value — once
// the caller has fully consumed it: the larger backing array is retained
// for the next Take, and every element is cleared so a burst iteration's
// contents (envelope message pointers, payloads) are not pinned in
// memory until the next equally large burst.
func (b *Buf[T]) Done(used []T) {
	if cap(used) > cap(b.buf) {
		b.buf = used
	}
	clear(used)
}

// Pool is a set of independent Bufs indexed by worker. A loop that fans
// its per-item work out to N workers gives each one its own buffer (Buf
// is not safe for concurrent use), and each buffer keeps its grown
// capacity across rounds exactly like a single-owner Buf. The zero value
// is ready; Grow it to the pool width before handing buffers out.
type Pool[T any] struct{ bufs []Buf[T] }

// Grow ensures the pool holds at least n buffers, keeping the existing
// ones (and their retained capacity) intact.
func (p *Pool[T]) Grow(n int) {
	if n > len(p.bufs) {
		p.bufs = append(p.bufs, make([]Buf[T], n-len(p.bufs))...)
	}
}

// Worker returns worker w's buffer. The pool must have been grown past w.
func (p *Pool[T]) Worker(w int) *Buf[T] { return &p.bufs[w] }
