package scratch

import "testing"

func TestTakeDoneReusesAndClears(t *testing.T) {
	var b Buf[*int]
	v := 7
	s := b.Take()
	if len(s) != 0 {
		t.Fatalf("Take returned len %d", len(s))
	}
	s = append(s, &v, &v, &v)
	b.Done(s)
	if s[0] != nil || s[1] != nil || s[2] != nil {
		t.Error("Done must clear the consumed elements")
	}
	s2 := b.Take()
	if cap(s2) < 3 {
		t.Errorf("capacity not retained: %d", cap(s2))
	}
	if len(s2) != 0 {
		t.Errorf("Take after Done returned len %d", len(s2))
	}
}

func TestDoneKeepsLargerArray(t *testing.T) {
	var b Buf[int]
	small := append(b.Take(), 1)
	b.Done(small)
	grown := append(b.Take(), make([]int, 100)...)
	b.Done(grown)
	if got := cap(b.Take()); got < 100 {
		t.Errorf("grown capacity lost: %d", got)
	}
	// A smaller use must not shrink the retained array.
	tiny := append(b.Take(), 1)
	b.Done(tiny)
	if got := cap(b.Take()); got < 100 {
		t.Errorf("capacity shrank after small use: %d", got)
	}
}

func TestPoolWorkersAreIndependent(t *testing.T) {
	var p Pool[int]
	p.Grow(3)
	a, b := p.Worker(0), p.Worker(1)
	if a == b {
		t.Fatal("workers share a buffer")
	}
	sa := append(a.Take(), make([]int, 50)...)
	a.Done(sa)
	if got := cap(p.Worker(1).Take()); got != 0 {
		t.Errorf("worker 1 inherited worker 0's capacity: %d", got)
	}
	if got := cap(p.Worker(0).Take()); got < 50 {
		t.Errorf("worker 0 capacity lost: %d", got)
	}
	// Growing keeps existing buffers (and their retained arrays) intact.
	p.Grow(8)
	if got := cap(p.Worker(0).Take()); got < 50 {
		t.Errorf("Grow dropped worker 0's retained array: %d", got)
	}
	p.Grow(2) // shrinking requests are no-ops
	if got := cap(p.Worker(7).Take()); got != 0 {
		t.Errorf("fresh worker has capacity %d", got)
	}
}

func TestZeroAllocSteadyState(t *testing.T) {
	var b Buf[int]
	warm := append(b.Take(), make([]int, 64)...)
	b.Done(warm)
	allocs := testing.AllocsPerRun(100, func() {
		s := b.Take()
		for i := 0; i < 64; i++ {
			s = append(s, i)
		}
		b.Done(s)
	})
	if allocs != 0 {
		t.Errorf("steady state allocates %.1f/op", allocs)
	}
}
