// Package bench measures simulation throughput for the bench trajectory
// gate: a machine-readable {ns/op, allocs/op, ticks/sec, latency} record
// per scenario, written as JSON (schema "matrix-bench/1"), and a compare
// step that fails when the current tree's tick cost regresses past a
// threshold against a committed baseline.
//
// Wall-clock benchmarks on shared CI machines are noisy, so the gate is
// deliberately coarse: best-of-N repeats (the minimum is the least-noisy
// estimator of the true cost) and a generous default threshold (15%).
// The committed baseline's absolute numbers are machine-specific; only
// the trajectory — today's tree against the same file regenerated on the
// same machine — is meaningful, which is exactly what CI measures by
// regenerating the current measurement on the box that holds the
// baseline's ancestry.
package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"matrix/internal/sim"
)

// Schema identifies the bench file format. Bump on incompatible change.
const Schema = "matrix-bench/1"

// DefaultThreshold is the relative ns/tick regression that fails the gate.
const DefaultThreshold = 0.15

// Measurement is one scenario's cost record.
type Measurement struct {
	// NsPerTick is wall nanoseconds per simulation tick (best of repeats).
	NsPerTick float64 `json:"ns_per_tick"`
	// AllocsPerTick is heap allocations per tick (same run as NsPerTick).
	AllocsPerTick float64 `json:"allocs_per_tick"`
	// TicksPerSec is the reciprocal throughput of the best run.
	TicksPerSec float64 `json:"ticks_per_sec"`
	// Ticks is how many ticks one run of the scenario steps.
	Ticks int `json:"ticks"`
	// LatencyP50Ms / LatencyP95Ms summarize the run's simulated
	// action→echo latency distribution (deterministic per scenario, so
	// they double as a cheap correctness fingerprint in review).
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
}

// File is one committed bench record: environment stamp plus a
// measurement per scenario.
type File struct {
	Schema    string                 `json:"schema"`
	Go        string                 `json:"go"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	Scenarios map[string]Measurement `json:"scenarios"`
}

// NewFile returns an empty record stamped with the current toolchain.
func NewFile() *File {
	return &File{
		Schema:    Schema,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scenarios: map[string]Measurement{},
	}
}

// Run measures one scenario config: repeats full simulation runs and
// keeps the cheapest (minimum wall ns/tick), which is the standard
// estimator under scheduler noise. Latency quantiles come from the last
// run — the simulation is deterministic, so every repeat produces the
// identical distribution.
func Run(ctx context.Context, cfg sim.Config, repeats int) (Measurement, error) {
	if repeats < 1 {
		repeats = 1
	}
	var best Measurement
	for r := 0; r < repeats; r++ {
		m, err := runOnce(ctx, cfg)
		if err != nil {
			return Measurement{}, err
		}
		if r == 0 || m.NsPerTick < best.NsPerTick {
			best = m
		}
	}
	return best, nil
}

// runOnce steps one full simulation, measuring wall time and heap
// allocations across the stepping loop only (construction and Finish are
// excluded: they are O(1) per run, not per tick).
func runOnce(ctx context.Context, cfg sim.Config) (Measurement, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return Measurement{}, err
	}
	if err := s.Start(); err != nil {
		return Measurement{}, err
	}
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	ticks := 0
	for !s.Done() {
		if ticks%64 == 0 {
			if err := ctx.Err(); err != nil {
				return Measurement{}, err
			}
		}
		if err := s.Step(); err != nil {
			return Measurement{}, err
		}
		ticks++
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&ms1)
	res := s.Finish()
	if ticks == 0 {
		return Measurement{}, fmt.Errorf("bench: scenario ran zero ticks")
	}
	m := Measurement{
		NsPerTick:     float64(wall.Nanoseconds()) / float64(ticks),
		AllocsPerTick: float64(ms1.Mallocs-ms0.Mallocs) / float64(ticks),
		Ticks:         ticks,
	}
	if m.NsPerTick > 0 {
		m.TicksPerSec = 1e9 / m.NsPerTick
	}
	if res.Latency != nil && res.Latency.Count() > 0 {
		m.LatencyP50Ms = res.Latency.Quantile(0.5)
		m.LatencyP95Ms = res.Latency.Quantile(0.95)
	}
	return m, nil
}

// WriteFile writes f as indented JSON (stable key order — encoding/json
// sorts map keys) with a trailing newline, so committed baselines diff
// cleanly.
func WriteFile(path string, f *File) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads and schema-checks a bench record.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if f.Schema != Schema {
		return nil, fmt.Errorf("bench: %s has schema %q, want %q", path, f.Schema, Schema)
	}
	return &f, nil
}

// Compare gates current against baseline: every baseline scenario must be
// present, and none may exceed the baseline's ns/tick by more than
// threshold (fraction; <=0 selects DefaultThreshold). The returned error
// lists every violation; nil means the gate passes. Improvements and new
// scenarios never fail the gate.
func Compare(baseline, current *File, threshold float64) error {
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	names := make([]string, 0, len(baseline.Scenarios))
	for name := range baseline.Scenarios {
		names = append(names, name)
	}
	sort.Strings(names)
	var fails []string
	for _, name := range names {
		base := baseline.Scenarios[name]
		cur, ok := current.Scenarios[name]
		if !ok {
			fails = append(fails, fmt.Sprintf("%s: missing from current run", name))
			continue
		}
		if base.NsPerTick <= 0 {
			continue // degenerate baseline entry; nothing to gate against
		}
		ratio := cur.NsPerTick / base.NsPerTick
		if ratio > 1+threshold {
			fails = append(fails, fmt.Sprintf("%s: %.0f ns/tick vs baseline %.0f (%+.1f%%, limit %+.0f%%)",
				name, cur.NsPerTick, base.NsPerTick, (ratio-1)*100, threshold*100))
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("bench regression gate failed:\n  %s", strings.Join(fails, "\n  "))
	}
	return nil
}
