package bench

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"matrix/internal/game"
	"matrix/internal/geom"
	"matrix/internal/load"
	"matrix/internal/sim"
)

// tinyConfig is a seconds-scale run, big enough to produce echoes (so the
// latency quantiles are non-zero) and cheap enough for the unit suite.
func tinyConfig() sim.Config {
	return sim.Config{
		Profile:         game.Bzflag(),
		World:           geom.R(0, 0, 500, 500),
		Seed:            3,
		DurationSeconds: 5,
		MaxServers:      2,
		BasePopulation:  15,
		LoadPolicy:      load.Config{},
	}
}

func TestRunProducesMeasurement(t *testing.T) {
	m, err := Run(context.Background(), tinyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Ticks <= 0 {
		t.Errorf("Ticks = %d, want > 0", m.Ticks)
	}
	if m.NsPerTick <= 0 {
		t.Errorf("NsPerTick = %g, want > 0", m.NsPerTick)
	}
	if m.TicksPerSec <= 0 {
		t.Errorf("TicksPerSec = %g, want > 0", m.TicksPerSec)
	}
	// An unloaded scenario echoes within the same virtual tick, so 0ms
	// quantiles are legitimate — only ordering is asserted.
	if m.LatencyP50Ms < 0 || m.LatencyP95Ms < m.LatencyP50Ms {
		t.Errorf("latency quantiles implausible: p50=%g p95=%g", m.LatencyP50Ms, m.LatencyP95Ms)
	}
}

func TestRunCancels(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinyConfig(), 1); err == nil {
		t.Error("Run with cancelled context succeeded")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	f := NewFile()
	f.Scenarios["flashcrowd"] = Measurement{NsPerTick: 123456, Ticks: 3000, TicksPerSec: 8100}
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Scenarios["flashcrowd"].NsPerTick != 123456 {
		t.Errorf("round trip mangled the record: %+v", got)
	}

	// A wrong schema is rejected, not silently compared.
	f.Schema = "matrix-bench/0"
	if err := WriteFile(path, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema accepted (err=%v)", err)
	}
}

// TestCompareGate is the gate's self-test: a synthetic 2x tick slowdown
// must fail, matching noise must pass, and a dropped scenario must fail.
func TestCompareGate(t *testing.T) {
	base := NewFile()
	base.Scenarios["flashcrowd"] = Measurement{NsPerTick: 100000}
	base.Scenarios["reclaimstress"] = Measurement{NsPerTick: 50000}

	ok := NewFile()
	ok.Scenarios["flashcrowd"] = Measurement{NsPerTick: 110000} // +10% < 15%
	ok.Scenarios["reclaimstress"] = Measurement{NsPerTick: 40000}
	if err := Compare(base, ok, 0); err != nil {
		t.Errorf("within-threshold run failed the gate: %v", err)
	}

	slow := NewFile()
	slow.Scenarios["flashcrowd"] = Measurement{NsPerTick: 200000} // 2x
	slow.Scenarios["reclaimstress"] = Measurement{NsPerTick: 50000}
	err := Compare(base, slow, 0)
	if err == nil {
		t.Fatal("2x slowdown passed the gate")
	}
	if !strings.Contains(err.Error(), "flashcrowd") || strings.Contains(err.Error(), "reclaimstress:") {
		t.Errorf("gate error names the wrong scenarios: %v", err)
	}

	missing := NewFile()
	missing.Scenarios["flashcrowd"] = Measurement{NsPerTick: 100000}
	if err := Compare(base, missing, 0); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("dropped scenario passed the gate (err=%v)", err)
	}

	// New scenarios and improvements never fail.
	better := NewFile()
	better.Scenarios["flashcrowd"] = Measurement{NsPerTick: 30000}
	better.Scenarios["reclaimstress"] = Measurement{NsPerTick: 20000}
	better.Scenarios["brandnew"] = Measurement{NsPerTick: 9e9}
	if err := Compare(base, better, 0); err != nil {
		t.Errorf("improved run failed the gate: %v", err)
	}
}
