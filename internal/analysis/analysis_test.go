package analysis

import (
	"math"
	"testing"
)

// paperScale is a deployment modeled on the paper's asymptotic claim:
// 10,000 servers on a very large world, gigabit-class servers.
func paperScale() Model {
	return Model{
		WorldArea:         1e8, // 10,000 x 10,000 world
		Servers:           10000,
		Radius:            5,
		UpdatesPerSec:     5,
		PacketBytes:       100,
		ServerCapacityBps: 125e6, // 1 Gbps
	}
}

func TestValidate(t *testing.T) {
	if err := paperScale().Validate(); err != nil {
		t.Fatalf("paper-scale model invalid: %v", err)
	}
	bad := paperScale()
	bad.Servers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero servers must fail")
	}
	bad = paperScale()
	bad.ServerCapacityBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestOverlapFraction(t *testing.T) {
	m := paperScale()
	// L = sqrt(1e8/1e4) = 100, R=5: f = (100^2 - 90^2)/100^2 = 0.19.
	if got := m.PartitionSide(); got != 100 {
		t.Fatalf("PartitionSide = %v", got)
	}
	if got := m.OverlapFraction(); math.Abs(got-0.19) > 1e-12 {
		t.Fatalf("OverlapFraction = %v, want 0.19", got)
	}
	// Degenerate: partitions smaller than the band -> fraction 1.
	m.Radius = 60
	if got := m.OverlapFraction(); got != 1 {
		t.Fatalf("degenerate OverlapFraction = %v, want 1", got)
	}
	// Zero radius: no overlap at all.
	m.Radius = 0
	if got := m.OverlapFraction(); got != 0 {
		t.Fatalf("zero-radius OverlapFraction = %v", got)
	}
}

func TestLoadMonotoneInPopulation(t *testing.T) {
	m := paperScale()
	prev := 0.0
	for _, p := range []float64{1e3, 1e4, 1e5, 1e6, 1e7} {
		cur := m.PerServerLoadBps(p)
		if cur <= prev {
			t.Fatalf("load not monotone: %v at %v after %v", cur, p, prev)
		}
		prev = cur
	}
}

func TestMaxPopulationRespectsCapacity(t *testing.T) {
	m := paperScale()
	maxP := m.MaxPopulation()
	if maxP <= 0 {
		t.Fatal("MaxPopulation = 0")
	}
	at := m.PerServerLoadBps(maxP)
	if at > m.ServerCapacityBps*1.0001 {
		t.Fatalf("load at max population %v exceeds capacity %v", at, m.ServerCapacityBps)
	}
	if m.PerServerLoadBps(maxP*1.1) <= m.ServerCapacityBps {
		t.Fatal("max population is not tight")
	}
}

// TestPaperClaimMillionPlayers reproduces §4.2(a): with small overlap
// populations, Matrix scales past 1,000,000 players on 10,000 servers.
func TestPaperClaimMillionPlayers(t *testing.T) {
	m := paperScale()
	maxP := m.MaxPopulation()
	if maxP < 1e6 {
		t.Fatalf("paper-scale deployment supports only %.0f players, want > 1M", maxP)
	}
	// And the inter-server share at that population must be small.
	if share := m.InterServerShare(maxP); share > 0.5 {
		t.Errorf("inter-server share = %v; claim requires it small", share)
	}
}

// TestOverlapGrowthKillsScaling reproduces the converse: when R grows until
// overlap regions swallow the partitions, supportable population collapses.
func TestOverlapGrowthKillsScaling(t *testing.T) {
	small := paperScale()
	big := paperScale()
	big.Radius = 50 // partition side is 100: the band covers everything
	if big.OverlapFraction() != 1 {
		t.Fatal("setup: expected fully-overlapped partitions")
	}
	ratio := small.MaxPopulation() / big.MaxPopulation()
	if ratio < 2 {
		t.Fatalf("large overlap should cost at least 2x population; ratio=%v", ratio)
	}
	// The absolute inter-server traffic at equal population must be much
	// larger (delivery fan-out grows too, so compare the raw flows).
	p := big.MaxPopulation()
	interSmall := small.InterServerShare(p) * small.PerServerLoadBps(p)
	interBig := big.InterServerShare(p) * big.PerServerLoadBps(p)
	if interBig < interSmall*5 {
		t.Errorf("inter-server bytes: big=%v small=%v; want >= 5x", interBig, interSmall)
	}
}

// TestCapacityIsTheBindingLimit reproduces §4.2(b): doubling per-server I/O
// capacity raises the supportable population; nothing else about the
// deployment needs to change.
func TestCapacityIsTheBindingLimit(t *testing.T) {
	m := paperScale()
	m2 := paperScale()
	m2.ServerCapacityBps *= 2
	p1, p2 := m.MaxPopulation(), m2.MaxPopulation()
	if p2 <= p1 {
		t.Fatalf("doubling capacity did not raise max population: %v -> %v", p1, p2)
	}
}

func TestSweepServersShape(t *testing.T) {
	m := paperScale()
	counts := []int{100, 1000, 10000}
	servers, players, fracs := m.SweepServers(counts)
	if len(servers) != 3 || len(players) != 3 || len(fracs) != 3 {
		t.Fatal("sweep lengths wrong")
	}
	// More servers => more total players (until overlap dominates).
	if !(players[1] > players[0] && players[2] > players[1]) {
		t.Errorf("population not increasing with servers: %v", players)
	}
	// More servers => smaller partitions => larger overlap fraction.
	if !(fracs[2] > fracs[1] && fracs[1] > fracs[0]) {
		t.Errorf("overlap fraction not increasing with servers: %v", fracs)
	}
}

func TestMaxPopulationInvalidModel(t *testing.T) {
	var m Model
	if got := m.MaxPopulation(); got != 0 {
		t.Errorf("invalid model MaxPopulation = %v", got)
	}
}

func TestInterServerShareZeroPopulation(t *testing.T) {
	m := paperScale()
	if got := m.InterServerShare(0); got != 0 {
		t.Errorf("share at zero population = %v", got)
	}
}
