// Package analysis implements the paper's §4.2 asymptotic model of Matrix
// scalability. The paper's two conclusions were:
//
//	a) Matrix scales to very large player populations (> 1,000,000 players
//	   and 10,000 servers) only if the number of players inside overlap
//	   regions is small relative to the total population, and
//	b) Matrix's scalability is ultimately limited by the maximum I/O
//	   capacity of individual servers.
//
// The model here makes those statements computable. Consider N servers
// tiling a world of area A, each holding P/N of a uniformly distributed
// player population P with visibility radius R and per-player update rate u
// (packets/s of size b bytes). For a square partition of side L = sqrt(A/N):
//
//   - overlap fraction f ≈ area of the R-band around the partition border
//     divided by the partition area = (L² - (L-2R)²)/L² (clamped to 1);
//   - a server's inbound client traffic is (P/N)·u packets/s;
//   - its inter-server traffic is f·(P/N)·u·E[|C|] where E[|C|] ≈ the mean
//     number of peers per overlap point (≈ 1 edge band, 3 at corners);
//   - per-player delivery fan-out adds density·π·R²·u deliveries/s.
//
// The maximum supportable population is the largest P for which every
// per-server flow stays under the server's I/O capacity.
package analysis

import (
	"errors"
	"math"
)

// Model holds the deployment parameters.
type Model struct {
	// WorldArea is the total map area (world units squared).
	WorldArea float64
	// Servers is the number of equally loaded servers N.
	Servers int
	// Radius is the visibility radius R.
	Radius float64
	// UpdatesPerSec is the per-player update rate u.
	UpdatesPerSec float64
	// PacketBytes is the mean packet size b (wire bytes).
	PacketBytes float64
	// ServerCapacityBps is one server's I/O capacity in bytes/second.
	ServerCapacityBps float64
}

// Validate checks the parameters.
func (m Model) Validate() error {
	if m.WorldArea <= 0 || m.Servers <= 0 || m.Radius < 0 {
		return errors.New("analysis: world, servers and radius must be positive")
	}
	if m.UpdatesPerSec <= 0 || m.PacketBytes <= 0 || m.ServerCapacityBps <= 0 {
		return errors.New("analysis: rates and capacities must be positive")
	}
	return nil
}

// PartitionSide returns the side length L of one (square-modelled)
// partition.
func (m Model) PartitionSide() float64 {
	return math.Sqrt(m.WorldArea / float64(m.Servers))
}

// OverlapFraction returns f: the fraction of a partition's area lying
// within R of its border (whose population needs inter-server forwarding).
// It clamps to 1 when the partition is smaller than the visibility band —
// the regime where localized consistency degenerates to global broadcast.
func (m Model) OverlapFraction() float64 {
	l := m.PartitionSide()
	if 2*m.Radius >= l {
		return 1
	}
	inner := l - 2*m.Radius
	return (l*l - inner*inner) / (l * l)
}

// meanConsistencySetSize approximates E[|C(σ)|] for points inside the
// overlap band: most band points see one neighbour, corner points three.
func (m Model) meanConsistencySetSize() float64 {
	l := m.PartitionSide()
	if 2*m.Radius >= l {
		// Everything overlaps everything nearby; cap at 8 neighbours.
		return 8
	}
	band := m.OverlapFraction()
	if band == 0 {
		return 0
	}
	// Corner sub-area: 4 squares of side 2R see ~3 peers; the rest of the
	// band sees 1.
	corner := 4 * (2 * m.Radius) * (2 * m.Radius) / (l * l)
	if corner > band {
		corner = band
	}
	edge := band - corner
	return (edge*1 + corner*3) / band
}

// PerServerLoadBps returns one server's total I/O in bytes/second when the
// deployment holds population players: client traffic in, event deliveries
// out, and inter-server forwards both ways.
func (m Model) PerServerLoadBps(population float64) float64 {
	perServer := population / float64(m.Servers)
	clientIn := perServer * m.UpdatesPerSec * m.PacketBytes

	// Delivery fan-out: each update is delivered to every player within R.
	density := population / m.WorldArea
	neighbours := density * math.Pi * m.Radius * m.Radius
	deliverOut := perServer * m.UpdatesPerSec * neighbours * m.PacketBytes

	// Inter-server: band players' updates forwarded to E[|C|] peers, and a
	// symmetric amount received from the neighbours.
	f := m.OverlapFraction()
	interOut := f * perServer * m.UpdatesPerSec * m.meanConsistencySetSize() * m.PacketBytes
	interIn := interOut

	return clientIn + deliverOut + interOut + interIn
}

// MaxPopulation returns the largest total player population (and the
// binding overlap fraction) for which no server exceeds its I/O capacity.
// The load is monotone in population, so it binary-searches.
func (m Model) MaxPopulation() float64 {
	if m.Validate() != nil {
		return 0
	}
	lo, hi := 0.0, 1.0
	for m.PerServerLoadBps(hi) < m.ServerCapacityBps && hi < 1e15 {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if m.PerServerLoadBps(mid) <= m.ServerCapacityBps {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// InterServerShare returns the fraction of a server's total load spent on
// inter-server forwarding at the given population — the quantity statement
// (a) of the paper says must stay small.
func (m Model) InterServerShare(population float64) float64 {
	total := m.PerServerLoadBps(population)
	if total == 0 {
		return 0
	}
	perServer := population / float64(m.Servers)
	f := m.OverlapFraction()
	inter := 2 * f * perServer * m.UpdatesPerSec * m.meanConsistencySetSize() * m.PacketBytes
	return inter / total
}

// SweepServers evaluates MaxPopulation over a range of fleet sizes,
// returning parallel slices (servers, maxPlayers, overlapFraction). This is
// the scaling curve behind the paper's ">1M players on 10k servers" claim.
func (m Model) SweepServers(serverCounts []int) (servers []int, maxPlayers, overlapFrac []float64) {
	servers = make([]int, 0, len(serverCounts))
	maxPlayers = make([]float64, 0, len(serverCounts))
	overlapFrac = make([]float64, 0, len(serverCounts))
	for _, n := range serverCounts {
		mm := m
		mm.Servers = n
		servers = append(servers, n)
		maxPlayers = append(maxPlayers, mm.MaxPopulation())
		overlapFrac = append(overlapFrac, mm.OverlapFraction())
	}
	return servers, maxPlayers, overlapFrac
}
