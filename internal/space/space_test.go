package space

import (
	"errors"
	"math/rand"
	"testing"

	"matrix/internal/geom"
	"matrix/internal/id"
)

func mustMap(t *testing.T, world geom.Rect, root id.ServerID) *Map {
	t.Helper()
	m, err := NewMap(world, root)
	if err != nil {
		t.Fatalf("NewMap: %v", err)
	}
	return m
}

func TestNewMapValidation(t *testing.T) {
	if _, err := NewMap(geom.Rect{}, 1); err == nil {
		t.Error("empty world must be rejected")
	}
	if _, err := NewMap(geom.R(0, 0, 10, 10), id.None); err == nil {
		t.Error("invalid root must be rejected")
	}
	m := mustMap(t, geom.R(0, 0, 10, 10), 1)
	if m.Len() != 1 || m.Root() != 1 {
		t.Errorf("fresh map: Len=%d Root=%v", m.Len(), m.Root())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("fresh map invalid: %v", err)
	}
}

func TestSplitToLeftHandsOffLeftPiece(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 50), 1)
	keep, give, err := m.Split(1, 2, SplitToLeft{})
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	// World is wider than tall: cut on X; left half goes to the child.
	if !give.Eq(geom.R(0, 0, 50, 50)) {
		t.Errorf("give = %v, want left half", give)
	}
	if !keep.Eq(geom.R(50, 0, 100, 50)) {
		t.Errorf("keep = %v, want right half", keep)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("after split: %v", err)
	}
	if p, _ := m.Parent(2); p != 1 {
		t.Errorf("parent of 2 = %v, want 1", p)
	}
	kids := m.Children(1)
	if len(kids) != 1 || kids[0] != 2 {
		t.Errorf("children of 1 = %v", kids)
	}
}

func TestSplitErrors(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Split(9, 2, nil); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("unknown server: %v", err)
	}
	if _, _, err := m.Split(1, 1, nil); !errors.Is(err, ErrDuplicateOwner) {
		t.Errorf("duplicate owner: %v", err)
	}
	if _, _, err := m.Split(1, id.None, nil); err == nil {
		t.Error("invalid child must be rejected")
	}
}

func TestSplitTooSmall(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, MinSplitExtent*1.5, MinSplitExtent*1.5), 1)
	if _, _, err := m.Split(1, 2, nil); !errors.Is(err, ErrTooSmall) {
		t.Errorf("want ErrTooSmall, got %v", err)
	}
}

func TestOwnerLookup(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Split(1, 2, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	// Server 2 has [0,50), server 1 has [50,100).
	tests := []struct {
		p    geom.Point
		want id.ServerID
	}{
		{geom.Pt(10, 10), 2},
		{geom.Pt(75, 10), 1},
		{geom.Pt(50, 50), 1},    // boundary belongs to the right (half-open)
		{geom.Pt(49.999, 0), 2}, // just left of the cut
		{geom.Pt(-5, -5), 2},    // outside: clamped to (0,0)
		{geom.Pt(100, 100), 1},  // outside max corner: clamped inward
	}
	for _, tt := range tests {
		if got := m.Owner(tt.p); got != tt.want {
			t.Errorf("Owner(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestReclaimRestoresParent(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	world := m.World()
	if _, _, err := m.Split(1, 2, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	parent, merged, err := m.Reclaim(2)
	if err != nil {
		t.Fatalf("Reclaim: %v", err)
	}
	if parent != 1 {
		t.Errorf("parent = %v, want 1", parent)
	}
	if !merged.Eq(world) {
		t.Errorf("merged = %v, want whole world", merged)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
	if err := m.Validate(); err != nil {
		t.Errorf("after reclaim: %v", err)
	}
}

func TestReclaimErrors(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Reclaim(1); !errors.Is(err, ErrRootReclaim) {
		t.Errorf("root reclaim: %v", err)
	}
	if _, _, err := m.Reclaim(42); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("unknown server: %v", err)
	}
	// Build a chain 1 -> 2 -> 3 where 2 has a child; reclaiming 2 must fail.
	if _, _, err := m.Split(1, 2, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Split(2, 3, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Reclaim(2); !errors.Is(err, ErrNotLeaf) {
		t.Errorf("non-leaf reclaim: %v", err)
	}
	// Reclaiming the leaf then the middle works.
	if _, _, err := m.Reclaim(3); err != nil {
		t.Fatalf("reclaim leaf: %v", err)
	}
	if _, _, err := m.Reclaim(2); err != nil {
		t.Fatalf("reclaim middle: %v", err)
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestReclaimableChildren(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Split(1, 2, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Split(1, 3, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Split(2, 4, SplitToLeft{}); err != nil {
		t.Fatal(err)
	}
	got := m.ReclaimableChildren(1)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("ReclaimableChildren(1) = %v, want [3] (2 has a child)", got)
	}
	got = m.ReclaimableChildren(2)
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("ReclaimableChildren(2) = %v, want [4]", got)
	}
}

func TestVersionAdvances(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	v0 := m.Version()
	if _, _, err := m.Split(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	v1 := m.Version()
	if v1 <= v0 {
		t.Errorf("version did not advance on split: %d -> %d", v0, v1)
	}
	if _, _, err := m.Reclaim(2); err != nil {
		t.Fatal(err)
	}
	if m.Version() <= v1 {
		t.Error("version did not advance on reclaim")
	}
}

func TestSplitToRightPolicy(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 50), 1)
	keep, give, err := m.Split(1, 2, SplitToRight{})
	if err != nil {
		t.Fatal(err)
	}
	if !give.Eq(geom.R(50, 0, 100, 50)) || !keep.Eq(geom.R(0, 0, 50, 50)) {
		t.Errorf("split-to-right: keep=%v give=%v", keep, give)
	}
}

type badPolicy struct{}

func (badPolicy) Split(b geom.Rect) (geom.Rect, geom.Rect) { return b, b }
func (badPolicy) Name() string                             { return "bad" }

func TestSplitPolicyInvariantEnforced(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Split(1, 2, badPolicy{}); err == nil {
		t.Error("overlapping policy output must be rejected")
	}
	if m.Len() != 1 {
		t.Error("failed split must not mutate the map")
	}
}

// TestRandomSplitReclaimFuzz drives a random sequence of splits and
// reclamations and checks the tiling + tree invariants after every step.
// This is the core safety property of the whole middleware: no point of the
// world is ever owned by zero or two servers.
func TestRandomSplitReclaimFuzz(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	m := mustMap(t, geom.R(0, 0, 1024, 1024), 1)
	var gen id.Generator
	gen.NextServer() // consume 1, used by root
	live := []id.ServerID{1}
	for step := 0; step < 400; step++ {
		if rnd.Intn(2) == 0 || len(live) == 1 {
			victim := live[rnd.Intn(len(live))]
			child := gen.NextServer()
			if _, _, err := m.Split(victim, child, SplitToLeft{}); err != nil {
				if errors.Is(err, ErrTooSmall) {
					continue
				}
				t.Fatalf("step %d: split %v: %v", step, victim, err)
			}
			live = append(live, child)
		} else {
			victim := live[rnd.Intn(len(live))]
			if !m.CanReclaim(victim) {
				continue
			}
			if _, _, err := m.Reclaim(victim); err != nil {
				t.Fatalf("step %d: reclaim %v: %v", step, victim, err)
			}
			for i, s := range live {
				if s == victim {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("step %d: invariant broken: %v", step, err)
		}
		// Every sampled point must resolve to a live owner whose bounds
		// contain it.
		for i := 0; i < 8; i++ {
			p := geom.Pt(rnd.Float64()*1024, rnd.Float64()*1024)
			owner := m.Owner(p)
			b, err := m.Bounds(owner)
			if err != nil {
				t.Fatalf("step %d: owner %v unknown: %v", step, owner, err)
			}
			if !b.Contains(p) {
				t.Fatalf("step %d: owner %v bounds %v does not contain %v", step, owner, b, p)
			}
		}
	}
}

func TestPartitionsSnapshotIsolated(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	parts := m.Partitions()
	parts[0].Bounds = geom.R(0, 0, 1, 1) // mutate the copy
	b, _ := m.Bounds(1)
	if !b.Eq(geom.R(0, 0, 100, 100)) {
		t.Error("Partitions must return a copy")
	}
}

func TestBoundsUnknown(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, err := m.Bounds(77); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("want ErrUnknownServer, got %v", err)
	}
	if _, err := m.Parent(77); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("want ErrUnknownServer, got %v", err)
	}
}

func TestReplaceOwnerRoot(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 10, 10), 1)
	bounds, err := m.ReplaceOwner(1, 2)
	if err != nil {
		t.Fatalf("ReplaceOwner: %v", err)
	}
	if !bounds.Eq(geom.R(0, 0, 10, 10)) {
		t.Errorf("transferred bounds = %v", bounds)
	}
	if m.Root() != 2 {
		t.Errorf("Root = %v, want 2", m.Root())
	}
	if got := m.Owner(geom.Pt(5, 5)); got != 2 {
		t.Errorf("Owner = %v, want 2", got)
	}
	if _, err := m.Bounds(1); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("old owner still known: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestReplaceOwnerMidTreeRewiresEdges(t *testing.T) {
	// Build 1 -> 2 -> 3 by splitting twice, then replace the middle node.
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Split(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Split(2, 3, nil); err != nil {
		t.Fatal(err)
	}
	oldBounds, _ := m.Bounds(2)
	v := m.Version()
	bounds, err := m.ReplaceOwner(2, 9)
	if err != nil {
		t.Fatalf("ReplaceOwner: %v", err)
	}
	if !bounds.Eq(oldBounds) {
		t.Errorf("bounds = %v, want %v", bounds, oldBounds)
	}
	if m.Version() != v+1 {
		t.Errorf("version = %d, want %d", m.Version(), v+1)
	}
	if p, _ := m.Parent(9); p != 1 {
		t.Errorf("Parent(9) = %v, want 1", p)
	}
	if p, _ := m.Parent(3); p != 9 {
		t.Errorf("Parent(3) = %v, want 9", p)
	}
	if kids := m.Children(9); len(kids) != 1 || kids[0] != 3 {
		t.Errorf("Children(9) = %v", kids)
	}
	if kids := m.Children(1); len(kids) != 1 || kids[0] != 9 {
		t.Errorf("Children(1) = %v", kids)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	// The replacement slots into the reclaim chain exactly where the old
	// owner was: reclaiming 3 into 9 must still work.
	if !m.CanReclaim(3) {
		t.Error("CanReclaim(3) = false after replacement")
	}
	if _, _, err := m.Reclaim(3); err != nil {
		t.Errorf("Reclaim(3): %v", err)
	}
}

func TestReplaceOwnerErrors(t *testing.T) {
	m := mustMap(t, geom.R(0, 0, 100, 100), 1)
	if _, _, err := m.Split(1, 2, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReplaceOwner(42, 9); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("unknown old: %v", err)
	}
	if _, err := m.ReplaceOwner(1, 2); !errors.Is(err, ErrDuplicateOwner) {
		t.Errorf("duplicate next: %v", err)
	}
	if _, err := m.ReplaceOwner(1, id.None); err == nil {
		t.Error("invalid next must be rejected")
	}
	if err := m.Validate(); err != nil {
		t.Errorf("failed replaces must not corrupt the map: %v", err)
	}
}
