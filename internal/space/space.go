// Package space maintains the dynamic spatial partitioning of the game world.
//
// Matrix "partitions the overall space Z of an MMOG into N non-overlapping
// partitions {P1..PN} and assigns each partition Pi to a distinct server Si"
// (paper §3.1). Partitions change at runtime through splits (an overloaded
// server hands half its map to a new server) and reclamations (a parent
// absorbs an underloaded child). This package owns that bookkeeping and its
// invariants:
//
//   - partitions are pairwise disjoint axis-aligned rectangles;
//   - the union of all partitions is exactly the world rectangle;
//   - split/reclaim relationships form a tree rooted at the first server.
//
// The package is purely computational (no goroutines, no I/O); the Matrix
// Coordinator and Matrix servers drive it.
package space

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"matrix/internal/geom"
	"matrix/internal/id"
)

// Sentinel errors returned by Map operations.
var (
	ErrUnknownServer  = errors.New("space: unknown server")
	ErrDuplicateOwner = errors.New("space: server already owns a partition")
	ErrNotLeaf        = errors.New("space: server still has children")
	ErrRootReclaim    = errors.New("space: cannot reclaim the root server")
	ErrTooSmall       = errors.New("space: partition too small to split")
	ErrNotMergeable   = errors.New("space: partitions no longer merge into a rectangle")
)

// Partition pairs a server with the rectangle of the world it owns.
type Partition struct {
	Owner  id.ServerID
	Bounds geom.Rect
}

// SplitPolicy decides how an overloaded partition is divided. It returns the
// piece retained by the overloaded server and the piece handed to the new
// child. Implementations must return two disjoint non-empty rectangles whose
// union is exactly the input.
type SplitPolicy interface {
	// Split divides bounds into (keep, give).
	Split(bounds geom.Rect) (keep, give geom.Rect)
	// Name identifies the policy in experiment output.
	Name() string
}

// SplitToLeft is the paper's policy: the map is "split into two equal pieces
// with the left piece handed off to the new server". The cut runs across the
// longer axis so repeated splits keep partitions roughly square.
type SplitToLeft struct{}

// Split implements SplitPolicy.
func (SplitToLeft) Split(bounds geom.Rect) (keep, give geom.Rect) {
	lo, hi := bounds.SplitHalf()
	return hi, lo
}

// Name implements SplitPolicy.
func (SplitToLeft) Name() string { return "split-to-left" }

// SplitToRight is the mirror policy (right piece handed off); used by the
// ablation benchmarks to show the paper's choice is not load-sensitive.
type SplitToRight struct{}

// Split implements SplitPolicy.
func (SplitToRight) Split(bounds geom.Rect) (keep, give geom.Rect) {
	lo, hi := bounds.SplitHalf()
	return lo, hi
}

// Name implements SplitPolicy.
func (SplitToRight) Name() string { return "split-to-right" }

var (
	_ SplitPolicy = SplitToLeft{}
	_ SplitPolicy = SplitToRight{}
)

// MinSplitExtent is the smallest width/height a partition may have after a
// split. It guards against unbounded recursion when a hotspot is denser than
// the server fleet can dilute.
const MinSplitExtent = 1e-6

// Map is the authoritative picture of which server owns which part of the
// world. It is safe for concurrent use.
type Map struct {
	mu       sync.RWMutex
	world    geom.Rect
	bounds   map[id.ServerID]geom.Rect
	parent   map[id.ServerID]id.ServerID
	children map[id.ServerID]map[id.ServerID]bool
	root     id.ServerID
	version  uint64
}

// NewMap creates a Map covering world, fully owned by root.
func NewMap(world geom.Rect, root id.ServerID) (*Map, error) {
	if world.Empty() {
		return nil, errors.New("space: world rectangle is empty")
	}
	if !root.Valid() {
		return nil, errors.New("space: root server id is invalid")
	}
	return &Map{
		world:    world,
		bounds:   map[id.ServerID]geom.Rect{root: world},
		parent:   map[id.ServerID]id.ServerID{},
		children: map[id.ServerID]map[id.ServerID]bool{},
		root:     root,
		version:  1,
	}, nil
}

// NewPresetMap creates a Map with a fixed set of partitions, used by the
// static-partitioning baseline the paper compares against. The partitions
// must tile world exactly. The first partition's owner acts as the tree
// root; every other owner is recorded as its child so the structural
// invariants hold (static deployments never split or reclaim anyway).
func NewPresetMap(world geom.Rect, parts []Partition) (*Map, error) {
	if world.Empty() {
		return nil, errors.New("space: world rectangle is empty")
	}
	if len(parts) == 0 {
		return nil, errors.New("space: no partitions")
	}
	m := &Map{
		world:    world,
		bounds:   make(map[id.ServerID]geom.Rect, len(parts)),
		parent:   map[id.ServerID]id.ServerID{},
		children: map[id.ServerID]map[id.ServerID]bool{},
		root:     parts[0].Owner,
		version:  1,
	}
	for _, p := range parts {
		if !p.Owner.Valid() {
			return nil, errors.New("space: invalid owner in preset partitions")
		}
		if _, dup := m.bounds[p.Owner]; dup {
			return nil, fmt.Errorf("%w: %v", ErrDuplicateOwner, p.Owner)
		}
		m.bounds[p.Owner] = p.Bounds
		if p.Owner != m.root {
			m.parent[p.Owner] = m.root
			if m.children[m.root] == nil {
				m.children[m.root] = make(map[id.ServerID]bool)
			}
			m.children[m.root][p.Owner] = true
		}
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// World returns the full world rectangle.
func (m *Map) World() geom.Rect {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.world
}

// Root returns the root server of the split tree.
func (m *Map) Root() id.ServerID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.root
}

// Version returns a counter incremented by every topology change. Overlap
// tables are tagged with it so stale tables can be detected.
func (m *Map) Version() uint64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.version
}

// Len returns the number of partitions (= active servers).
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.bounds)
}

// Bounds returns the partition owned by s.
func (m *Map) Bounds(s id.ServerID) (geom.Rect, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	b, ok := m.bounds[s]
	if !ok {
		return geom.Rect{}, fmt.Errorf("%w: %v", ErrUnknownServer, s)
	}
	return b, nil
}

// Parent returns the split-tree parent of s (id.None for the root).
func (m *Map) Parent(s id.ServerID) (id.ServerID, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.bounds[s]; !ok {
		return id.None, fmt.Errorf("%w: %v", ErrUnknownServer, s)
	}
	return m.parent[s], nil
}

// Children returns the split-tree children of s, sorted by ID.
func (m *Map) Children(s id.ServerID) []id.ServerID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	kids := m.children[s]
	out := make([]id.ServerID, 0, len(kids))
	for k := range kids {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Partitions returns a snapshot of all partitions, sorted by owner ID.
func (m *Map) Partitions() []Partition {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]Partition, 0, len(m.bounds))
	for s, b := range m.bounds {
		out = append(out, Partition{Owner: s, Bounds: b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Owner < out[j].Owner })
	return out
}

// Owner returns the server whose partition contains p. The world's half-open
// rectangle semantics guarantee at most one owner; points outside the world
// are clamped onto it first, so every query resolves to some server.
func (m *Map) Owner(p geom.Point) id.ServerID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p = m.clampLocked(p)
	for s, b := range m.bounds {
		if b.Contains(p) {
			return s
		}
	}
	// Unreachable if invariants hold; fall back to root for robustness.
	return m.root
}

// clampLocked moves p to the interior of the world so boundary points on the
// max edges (which no half-open partition contains) resolve to the adjacent
// partition.
func (m *Map) clampLocked(p geom.Point) geom.Point {
	q := m.world.Clamp(p)
	if q.X >= m.world.MaxX {
		q.X = m.world.MaxX - MinSplitExtent/2
	}
	if q.Y >= m.world.MaxY {
		q.Y = m.world.MaxY - MinSplitExtent/2
	}
	return q
}

// Split divides the partition of overloaded according to policy, assigning
// the handed-off piece to child. It returns the rectangle retained by
// overloaded and the rectangle given to child.
func (m *Map) Split(overloaded, child id.ServerID, policy SplitPolicy) (keep, give geom.Rect, err error) {
	if policy == nil {
		policy = SplitToLeft{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	bounds, ok := m.bounds[overloaded]
	if !ok {
		return geom.Rect{}, geom.Rect{}, fmt.Errorf("%w: %v", ErrUnknownServer, overloaded)
	}
	if _, exists := m.bounds[child]; exists {
		return geom.Rect{}, geom.Rect{}, fmt.Errorf("%w: %v", ErrDuplicateOwner, child)
	}
	if !child.Valid() {
		return geom.Rect{}, geom.Rect{}, errors.New("space: child server id is invalid")
	}
	keep, give = policy.Split(bounds)
	if keep.Empty() || give.Empty() {
		return geom.Rect{}, geom.Rect{}, fmt.Errorf("space: policy %q produced an empty piece", policy.Name())
	}
	if keep.Width() < MinSplitExtent || keep.Height() < MinSplitExtent ||
		give.Width() < MinSplitExtent || give.Height() < MinSplitExtent {
		return geom.Rect{}, geom.Rect{}, fmt.Errorf("%w: %v", ErrTooSmall, bounds)
	}
	if keep.Intersects(give) || !keep.Union(give).Eq(bounds) {
		return geom.Rect{}, geom.Rect{}, fmt.Errorf("space: policy %q broke the tiling invariant", policy.Name())
	}
	m.bounds[overloaded] = keep
	m.bounds[child] = give
	m.parent[child] = overloaded
	if m.children[overloaded] == nil {
		m.children[overloaded] = make(map[id.ServerID]bool)
	}
	m.children[overloaded][child] = true
	m.version++
	return keep, give, nil
}

// ReplaceOwner transfers the partition of old — bounds, tree edges and root
// status — to next, removing old from the map. It is the topology half of
// failure remediation: when a server dies, a warm spare takes over its exact
// rectangle, so the tiling and the split tree are unchanged apart from the
// renamed node. It returns the transferred bounds.
func (m *Map) ReplaceOwner(old, next id.ServerID) (geom.Rect, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	bounds, ok := m.bounds[old]
	if !ok {
		return geom.Rect{}, fmt.Errorf("%w: %v", ErrUnknownServer, old)
	}
	if !next.Valid() {
		return geom.Rect{}, errors.New("space: replacement server id is invalid")
	}
	if _, exists := m.bounds[next]; exists {
		return geom.Rect{}, fmt.Errorf("%w: %v", ErrDuplicateOwner, next)
	}
	m.bounds[next] = bounds
	delete(m.bounds, old)
	if p, hasParent := m.parent[old]; hasParent {
		m.parent[next] = p
		delete(m.parent, old)
		delete(m.children[p], old)
		if m.children[p] == nil {
			m.children[p] = make(map[id.ServerID]bool)
		}
		m.children[p][next] = true
	}
	if kids := m.children[old]; len(kids) > 0 {
		m.children[next] = kids
		delete(m.children, old)
		for k := range kids {
			m.parent[k] = next
		}
	} else {
		delete(m.children, old)
	}
	if m.root == old {
		m.root = next
	}
	m.version++
	return bounds, nil
}

// Reclaim merges the partition of child back into its parent, removing child
// from the map. Only leaf servers can be reclaimed, and only by their own
// parent (the paper's parent/child reclamation rule). It returns the
// parent's new bounds.
func (m *Map) Reclaim(child id.ServerID) (parent id.ServerID, merged geom.Rect, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	childBounds, ok := m.bounds[child]
	if !ok {
		return id.None, geom.Rect{}, fmt.Errorf("%w: %v", ErrUnknownServer, child)
	}
	if child == m.root {
		return id.None, geom.Rect{}, ErrRootReclaim
	}
	if len(m.children[child]) > 0 {
		return id.None, geom.Rect{}, fmt.Errorf("%w: %v", ErrNotLeaf, child)
	}
	parent = m.parent[child]
	parentBounds := m.bounds[parent]
	merged = parentBounds.Union(childBounds)
	// The merge must itself be a clean rectangle: the paper only ever
	// reclaims a piece that was split off, so parent ∪ child tiles merged.
	if merged.Area()-parentBounds.Area()-childBounds.Area() > 1e-9*merged.Area() {
		return id.None, geom.Rect{}, fmt.Errorf("%w: parent %v, child %v", ErrNotMergeable, parentBounds, childBounds)
	}
	m.bounds[parent] = merged
	delete(m.bounds, child)
	delete(m.parent, child)
	delete(m.children[parent], child)
	delete(m.children, child)
	m.version++
	return parent, merged, nil
}

// CanReclaim reports whether child can currently be reclaimed: it must be a
// non-root leaf whose partition still merges with its parent's into a clean
// rectangle. Because splits always halve the parent's *current* rectangle,
// reclamation is valid in last-split-first order — the same order the
// paper's parent/child protocol produces.
func (m *Map) CanReclaim(child id.ServerID) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.canReclaimLocked(child)
}

func (m *Map) canReclaimLocked(child id.ServerID) bool {
	childBounds, ok := m.bounds[child]
	if !ok || child == m.root || len(m.children[child]) > 0 {
		return false
	}
	parentBounds := m.bounds[m.parent[child]]
	merged := parentBounds.Union(childBounds)
	return merged.Area()-parentBounds.Area()-childBounds.Area() <= 1e-9*merged.Area()
}

// ReclaimableChildren returns the children of s that can be reclaimed right
// now (leaves whose rectangles still merge with s's), sorted by ID.
func (m *Map) ReclaimableChildren(s id.ServerID) []id.ServerID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]id.ServerID, 0, len(m.children[s]))
	for k := range m.children[s] {
		if m.canReclaimLocked(k) {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PartitionNode is one partition plus its split-tree parent, the unit of a
// MapState snapshot.
type PartitionNode struct {
	Owner  id.ServerID
	Bounds geom.Rect
	Parent id.ServerID // id.None for the root
}

// MapState is a Map's serializable snapshot. Nodes are sorted by owner so
// encoding the same map twice produces byte-identical output.
type MapState struct {
	World   geom.Rect
	Root    id.ServerID
	Version uint64
	Nodes   []PartitionNode
}

// State snapshots the map: partitions, tree edges and the topology version.
func (m *Map) State() MapState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	st := MapState{World: m.world, Root: m.root, Version: m.version}
	for s, b := range m.bounds {
		st.Nodes = append(st.Nodes, PartitionNode{Owner: s, Bounds: b, Parent: m.parent[s]})
	}
	sort.Slice(st.Nodes, func(i, j int) bool { return st.Nodes[i].Owner < st.Nodes[j].Owner })
	return st
}

// NewMapFromState rebuilds a map from a snapshot, re-deriving the children
// index and re-checking every structural invariant.
func NewMapFromState(st MapState) (*Map, error) {
	if st.World.Empty() {
		return nil, errors.New("space: world rectangle is empty")
	}
	if !st.Root.Valid() {
		return nil, errors.New("space: root server id is invalid")
	}
	m := &Map{
		world:    st.World,
		bounds:   make(map[id.ServerID]geom.Rect, len(st.Nodes)),
		parent:   map[id.ServerID]id.ServerID{},
		children: map[id.ServerID]map[id.ServerID]bool{},
		root:     st.Root,
		version:  st.Version,
	}
	for _, n := range st.Nodes {
		if !n.Owner.Valid() {
			return nil, errors.New("space: invalid owner in map state")
		}
		if _, dup := m.bounds[n.Owner]; dup {
			return nil, fmt.Errorf("%w: %v", ErrDuplicateOwner, n.Owner)
		}
		m.bounds[n.Owner] = n.Bounds
		if n.Owner == st.Root {
			continue
		}
		if !n.Parent.Valid() {
			return nil, fmt.Errorf("space: non-root %v has no parent", n.Owner)
		}
		m.parent[n.Owner] = n.Parent
		if m.children[n.Parent] == nil {
			m.children[n.Parent] = make(map[id.ServerID]bool)
		}
		m.children[n.Parent][n.Owner] = true
	}
	if _, ok := m.bounds[st.Root]; !ok {
		return nil, fmt.Errorf("space: root %v missing from map state", st.Root)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks the structural invariants: pairwise-disjoint partitions
// exactly tiling the world, and a parent map that forms a tree rooted at
// Root. It is used by tests and by the coordinator's self-checks.
func (m *Map) Validate() error {
	m.mu.RLock()
	defer m.mu.RUnlock()
	parts := make([]Partition, 0, len(m.bounds))
	var area float64
	for s, b := range m.bounds {
		if b.Empty() {
			return fmt.Errorf("space: partition of %v is empty", s)
		}
		if !m.world.ContainsRect(b) {
			return fmt.Errorf("space: partition of %v (%v) escapes the world", s, b)
		}
		parts = append(parts, Partition{Owner: s, Bounds: b})
		area += b.Area()
	}
	for i := range parts {
		for j := i + 1; j < len(parts); j++ {
			if parts[i].Bounds.Intersects(parts[j].Bounds) {
				return fmt.Errorf("space: partitions of %v and %v overlap", parts[i].Owner, parts[j].Owner)
			}
		}
	}
	if diff := area - m.world.Area(); diff > 1e-9*m.world.Area() || diff < -1e-9*m.world.Area() {
		return fmt.Errorf("space: partitions cover area %v, world area is %v", area, m.world.Area())
	}
	// Tree checks: every non-root server has a known parent; no cycles.
	for s := range m.bounds {
		if s == m.root {
			continue
		}
		seen := map[id.ServerID]bool{}
		cur := s
		for cur != m.root {
			if seen[cur] {
				return fmt.Errorf("space: parent cycle at %v", cur)
			}
			seen[cur] = true
			p, ok := m.parent[cur]
			if !ok {
				return fmt.Errorf("space: %v has no path to root", s)
			}
			if _, alive := m.bounds[p]; !alive {
				return fmt.Errorf("space: %v has dead parent %v", cur, p)
			}
			cur = p
		}
	}
	return nil
}
