package id

import (
	"sync"
	"testing"
)

func TestZeroValues(t *testing.T) {
	if None.Valid() {
		t.Error("None must not be valid")
	}
	if ServerID(3).Valid() != true {
		t.Error("nonzero ServerID must be valid")
	}
}

func TestStrings(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{None.String(), "server(none)"},
		{ServerID(7).String(), "server-7"},
		{ClientID(9).String(), "client-9"},
		{ObjectID(4).String(), "object-4"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}

func TestGeneratorSequential(t *testing.T) {
	var g Generator
	if g.NextServer() != 1 || g.NextServer() != 2 {
		t.Error("server IDs must start at 1 and increment")
	}
	if g.NextClient() != 1 || g.NextClient() != 2 {
		t.Error("client IDs must start at 1 and increment")
	}
	if g.NextObject() != 1 {
		t.Error("object IDs must start at 1")
	}
}

func TestGeneratorConcurrentUnique(t *testing.T) {
	var g Generator
	const goroutines = 8
	const perG = 200
	var mu sync.Mutex
	seen := make(map[ClientID]bool, goroutines*perG)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ClientID, 0, perG)
			for j := 0; j < perG; j++ {
				local = append(local, g.NextClient())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate client id %v", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*perG {
		t.Fatalf("got %d unique ids, want %d", len(seen), goroutines*perG)
	}
}
