// Package id defines the strongly-typed identifiers shared by every Matrix
// component: servers, game clients, game objects and packets.
//
// The paper requires game servers to "identify players using globally unique
// IDs (such as callsigns) instead of locally generated IDs" so that players
// can migrate between servers; this package is that global namespace.
package id

import (
	"fmt"
	"sync/atomic"
)

// ServerID identifies one Matrix server / game server pair. The Matrix
// Coordinator allocates ServerIDs; ID 0 is reserved as "none".
type ServerID uint32

// None is the zero ServerID, meaning "no server".
const None ServerID = 0

// String implements fmt.Stringer.
func (s ServerID) String() string {
	if s == None {
		return "server(none)"
	}
	return fmt.Sprintf("server-%d", uint32(s))
}

// Valid reports whether the ID refers to an actual server.
func (s ServerID) Valid() bool { return s != None }

// ClientID is the globally unique identity of a game client (the paper's
// "callsign"). It never changes when the client migrates between servers.
type ClientID uint64

// String implements fmt.Stringer.
func (c ClientID) String() string { return fmt.Sprintf("client-%d", uint64(c)) }

// ObjectID identifies a non-player game object (tree, building, NPC, ...).
type ObjectID uint64

// String implements fmt.Stringer.
func (o ObjectID) String() string { return fmt.Sprintf("object-%d", uint64(o)) }

// PacketSeq is a per-sender monotonically increasing packet sequence number,
// used to measure losses and reorderings in the evaluation harness.
type PacketSeq uint64

// Generator hands out unique identifiers. It is safe for concurrent use and
// its zero value is ready to use (first ID is 1, so the zero value of each
// ID type is never allocated).
type Generator struct {
	server atomic.Uint32
	client atomic.Uint64
	object atomic.Uint64
}

// NextServer returns a fresh ServerID.
func (g *Generator) NextServer() ServerID { return ServerID(g.server.Add(1)) }

// NextClient returns a fresh ClientID.
func (g *Generator) NextClient() ClientID { return ClientID(g.client.Add(1)) }

// NextObject returns a fresh ObjectID.
func (g *Generator) NextObject() ObjectID { return ObjectID(g.object.Add(1)) }

// GeneratorState is a Generator's serializable snapshot: the last ID handed
// out in each namespace.
type GeneratorState struct {
	Server uint32
	Client uint64
	Object uint64
}

// State snapshots the generator's counters.
func (g *Generator) State() GeneratorState {
	return GeneratorState{
		Server: g.server.Load(),
		Client: g.client.Load(),
		Object: g.object.Load(),
	}
}

// SetState restores previously snapshotted counters, so a restored component
// continues the exact ID sequence of the captured run.
func (g *Generator) SetState(st GeneratorState) {
	g.server.Store(st.Server)
	g.client.Store(st.Client)
	g.object.Store(st.Object)
}
