// Package matrix is an adaptive middleware for distributed multiplayer
// games, reproducing Balan, Ebling, Castro and Misra, "Matrix: Adaptive
// Middleware for Distributed Multiplayer Games" (Middleware 2005).
//
// Matrix lets a massively multiplayer game scale across servers without the
// game understanding distribution. The game world's spatial map is
// partitioned dynamically: each game server owns one rectangle, forwards
// every client packet — tagged with its world coordinates — to a co-located
// Matrix server, and Matrix routes the packet to the servers whose
// partitions fall within the packet's radius of visibility (its consistency
// set), resolved by an O(1) overlap-table lookup. When a server is
// overloaded, its Matrix server splits the partition and sheds half the map
// to a spare server from the pool; when load recedes, parents reclaim their
// children. A central Matrix Coordinator computes the overlap tables but
// stays off the latency-critical packet path.
//
// Three entry points cover the deployment modes:
//
//   - ServeCoordinator / StartServer / Dial run a production cluster over
//     TCP (or any Network), used by the cmd/ binaries;
//   - RunSimulation drives the identical middleware deterministically at
//     experiment scale (hundreds of clients on one machine);
//   - the re-exported building blocks (Profile, Script, LoadPolicy) shape
//     workloads and policies for either mode.
package matrix

import (
	"log"
	"time"

	"matrix/internal/coordinator"
	"matrix/internal/game"
	"matrix/internal/gameclient"
	"matrix/internal/geom"
	"matrix/internal/id"
	"matrix/internal/load"
	"matrix/internal/middleware"
	"matrix/internal/netem"
	"matrix/internal/policy"
	"matrix/internal/protocol"
	"matrix/internal/sim"
	"matrix/internal/snapshot"
	"matrix/internal/staticpart"
	"matrix/internal/trace"
	"matrix/internal/transport"
)

// Re-exported spatial and identity types. Games tag packets with Points;
// partitions and worlds are Rects.
type (
	// Point is a location in the game world.
	Point = geom.Point
	// Rect is an axis-aligned rectangle (min-closed, max-open).
	Rect = geom.Rect
	// ServerID identifies a Matrix server / game server pair.
	ServerID = id.ServerID
	// ClientID is a player's globally unique callsign.
	ClientID = id.ClientID
	// UpdateKind classifies a game update (move, action, chat, ...).
	UpdateKind = protocol.UpdateKind
	// GameUpdate is one spatially tagged game packet.
	GameUpdate = protocol.GameUpdate
	// LoadPolicy tunes the split/reclaim thresholds; the zero value is the
	// paper's 300/150-client policy.
	LoadPolicy = load.Config
	// Network abstracts the transport (TCP or in-memory).
	Network = transport.Network
	// Profile is a game workload's traffic shape.
	Profile = game.Profile
	// Script schedules population changes (hotspots) for simulations.
	Script = game.Script
	// ScriptEvent is one scripted join/leave.
	ScriptEvent = game.Event
	// SimulationConfig parameterizes a deterministic simulation run.
	SimulationConfig = sim.Config
	// SimulationResult carries a simulation's series and aggregates.
	SimulationResult = sim.Result
	// NetemConfig models a degraded network in simulations (the zero value
	// is an exact pass-through).
	NetemConfig = netem.Config
	// NetemLink is one link's impairment: delay, jitter, i.i.d. and burst
	// loss.
	NetemLink = netem.LinkConfig
	// HostMiddleware configures the wire-path interceptor chain a server
	// runs on every inbound frame (see WithMiddleware). The zero value
	// installs nothing.
	HostMiddleware = middleware.Config
	// SimMiddleware configures the simulation's deterministic admission
	// chain (SimulationConfig.Middleware).
	SimMiddleware = sim.MiddlewareConfig
	// Tracer is a ring-buffered packet-path and tick-phase tracer (see
	// NewTracer, WithTracer). Export with its WriteJSON (Perfetto-loadable
	// Chrome trace JSON), WriteText, or Serve methods.
	Tracer = trace.Tracer
)

// Update kinds.
const (
	KindMove    = protocol.KindMove
	KindAction  = protocol.KindAction
	KindChat    = protocol.KindChat
	KindSpawn   = protocol.KindSpawn
	KindDespawn = protocol.KindDespawn
)

// Script event kinds. The netem kinds change network conditions mid-run:
// impairment swaps, backbone partitions and server crash/recover cycles.
const (
	EventJoin      = game.EventJoin
	EventLeave     = game.EventLeave
	EventImpair    = game.EventImpair
	EventPartition = game.EventPartition
	EventHeal      = game.EventHeal
	EventCrash     = game.EventCrash
	EventRecover   = game.EventRecover
	EventCrashLose = game.EventCrashLose
)

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R builds a Rect.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// TCP returns the production transport.
func TCP() Network { return transport.TCPNetwork{} }

// NewMemNetwork returns an isolated in-process transport, byte-compatible
// with TCP; ideal for tests and single-process demos.
func NewMemNetwork() Network { return transport.NewMemNetwork() }

// ImpairNetwork wraps any Network so every connection it produces runs
// under emulated impairment (delay, jitter, loss) — the live counterpart
// of SimulationConfig.Netem. A zero link returns nw unchanged.
func ImpairNetwork(nw Network, link NetemLink, seed int64) Network {
	return netem.WrapNetwork(nw, link, seed)
}

// ParseNetemSpec parses the CLI impairment syntax, e.g.
// "delay=40ms,jitter=25ms,loss=2%".
func ParseNetemSpec(spec string) (NetemLink, error) { return netem.ParseSpec(spec) }

// ParseMiddlewareSpec parses the CLI stage-list syntax behind -middleware,
// e.g. "auth,ratelimit,admission,audit". Order is preserved (it becomes
// request order); an empty spec disables the chain.
func ParseMiddlewareSpec(spec string) ([]string, error) { return middleware.ParseSpec(spec) }

// BzflagProfile returns the BzFlag-like workload (tank shooter).
func BzflagProfile() Profile { return game.Bzflag() }

// DaimoninProfile returns the Daimonin-like workload (RPG).
func DaimoninProfile() Profile { return game.Daimonin() }

// Quake2Profile returns the Quake 2-like workload (fast shooter).
func Quake2Profile() Profile { return game.Quake2() }

// Figure2Script reproduces the paper's Figure 2 hotspot schedule on world.
func Figure2Script(world Rect) Script { return game.Figure2Script(world) }

// DefaultLoadPolicy returns the paper's thresholds: overload at 300
// clients, underload below 150.
func DefaultLoadPolicy() LoadPolicy { return load.DefaultConfig() }

// PolicyNames lists the registered decision policies ("paper",
// "hysteresis", ...) in presentation order. Pass one to WithPolicy, a
// -policy flag, or SimulationConfig.Policy.
func PolicyNames() []string { return policy.Names() }

// DescribePolicy returns a registered policy's one-line description, or ""
// for unknown names.
func DescribePolicy(name string) string { return policy.Describe(name) }

// ValidatePolicy checks a policy name exactly like the constructors and
// -policy flags do: the empty string (meaning the paper policy) and every
// PolicyNames entry pass; anything else errors, naming the valid choices.
func ValidatePolicy(name string) error { return policy.Valid(name) }

// StaticGrid divides world into n fixed tiles for the static-partitioning
// baseline (see WithStaticPartitions).
func StaticGrid(world Rect, n int) ([]Rect, error) { return staticpart.Grid(world, n) }

// options collects the functional options shared by the constructors.
type options struct {
	network     Network
	addr        string
	world       Rect
	radius      float64
	loadPolicy  LoadPolicy
	policy      string
	static      []Rect
	extraRadii  []float64
	logger      *log.Logger
	tick        time.Duration
	serviceRate int
	maxQueue    int
	report      time.Duration
	restore     []byte
	tracer      *trace.Tracer
	mw          HostMiddleware
	authToken   string
	heartbeat   time.Duration
	leaseMisses int
	checkpoint  time.Duration
	fallbacks   []string
	redialEvery time.Duration
}

func defaultOptions() options {
	return options{
		network: transport.TCPNetwork{},
		world:   geom.R(0, 0, 1000, 1000),
		radius:  40,
	}
}

// Option configures ServeCoordinator, StartServer or Dial.
type Option func(*options)

// WithNetwork selects the transport (default TCP).
func WithNetwork(nw Network) Option { return func(o *options) { o.network = nw } }

// WithAddr sets the listen address (coordinator/server) — empty picks an
// ephemeral address.
func WithAddr(addr string) Option { return func(o *options) { o.addr = addr } }

// WithWorld sets the full game-world rectangle (coordinator only).
func WithWorld(w Rect) Option { return func(o *options) { o.world = w } }

// WithRadius sets the game's visibility radius (servers).
func WithRadius(r float64) Option { return func(o *options) { o.radius = r } }

// WithLoadPolicy tunes split/reclaim thresholds (servers).
func WithLoadPolicy(p LoadPolicy) Option { return func(o *options) { o.loadPolicy = p } }

// WithPolicy selects the named decision policy (see PolicyNames). On a
// server it judges when to split and reclaim; on a coordinator it picks
// spares and places children. Empty means the paper's rules. Unknown names
// fail the constructor.
func WithPolicy(name string) Option { return func(o *options) { o.policy = name } }

// WithStaticPartitions runs the coordinator as the static-partitioning
// baseline: the i-th registering server is pinned to tiles[i] forever.
func WithStaticPartitions(tiles []Rect) Option {
	return func(o *options) { o.static = append([]Rect(nil), tiles...) }
}

// WithExtraRadii registers additional visibility radii (the paper's
// per-class exceptions); the coordinator maintains one overlap-table set
// per radius.
func WithExtraRadii(radii ...float64) Option {
	return func(o *options) { o.extraRadii = append([]float64(nil), radii...) }
}

// WithLogger directs diagnostics (default: silent).
func WithLogger(l *log.Logger) Option { return func(o *options) { o.logger = l } }

// WithTickInterval sets the game-server processing cadence (servers).
func WithTickInterval(d time.Duration) Option { return func(o *options) { o.tick = d } }

// WithServiceRate sets packets processed per tick (servers).
func WithServiceRate(n int) Option { return func(o *options) { o.serviceRate = n } }

// WithMaxQueue bounds the game server's receive queue (servers).
func WithMaxQueue(n int) Option { return func(o *options) { o.maxQueue = n } }

// WithReportInterval sets the load-report cadence (servers).
func WithReportInterval(d time.Duration) Option { return func(o *options) { o.report = d } }

// WithMiddleware installs the wire-path interceptor chain on a server:
// every inbound client and peer frame is judged by the configured stages
// (auth, ratelimit, admission, audit) before it reaches the game server
// (servers only).
func WithMiddleware(cfg HostMiddleware) Option { return func(o *options) { o.mw = cfg } }

// WithAuthToken stamps the session token on the client's ClientHello —
// the initial join and every redirect rejoin — for servers running the
// auth stage (clients only).
func WithAuthToken(token string) Option { return func(o *options) { o.authToken = token } }

// WithHeartbeatEvery enables fleet health tracking. On a coordinator it
// sets the lease tick: servers that miss WithLeaseMisses consecutive beats
// are declared dead and their regions are adopted by warm spares. On a
// server it sets the heartbeat send cadence (default 1s; beats are ignored
// by coordinators with health off, so the default is always safe). Zero on
// the coordinator disables every health feature.
func WithHeartbeatEvery(d time.Duration) Option { return func(o *options) { o.heartbeat = d } }

// WithLeaseMisses sets how many consecutive missed heartbeats kill a
// server's lease (coordinator only, default 3).
func WithLeaseMisses(n int) Option { return func(o *options) { o.leaseMisses = n } }

// WithCheckpointEvery sets how often a partition-owning server ships a
// checkpoint of its full node state to the coordinator (default 10s,
// negative disables). A spare adopting a dead server's region restores
// from the victim's last checkpoint (servers only).
func WithCheckpointEvery(d time.Duration) Option { return func(o *options) { o.checkpoint = d } }

// WithFallbackAddrs lists additional game servers a client may redial when
// its live connection dies without a redirect — i.e. its server crashed.
// Reaching any survivor is enough: the hello-retry path routes the client
// to whichever server owns its position now (clients only).
func WithFallbackAddrs(addrs ...string) Option {
	return func(o *options) { o.fallbacks = append([]string(nil), addrs...) }
}

// WithRedialEvery sets the client's crash-reconnect retry cadence
// (default 200ms, negative disables redialing; clients only).
func WithRedialEvery(d time.Duration) Option { return func(o *options) { o.redialEvery = d } }

// NewTracer builds a tracer with the given ring capacity (rounded up to a
// power of two; <= 0 picks the default, large enough for a busy tick
// window). A nil *Tracer is the disabled tracer — every method is safe.
func NewTracer(capacity int) *Tracer { return trace.New(capacity) }

// WithTracer attaches a tracer. On a server, tick phases become trace
// slices and /metrics summaries, and every client packet is followed
// across middleware, processing and peer forwards as an async span. On a
// coordinator, every correlation-stamped control frame (split, adoption,
// drain fan-out) gets an instant event, pairing with the receiving
// server's trace by corr value. Nil means tracing off, which costs
// nothing.
func WithTracer(tr *Tracer) Option { return func(o *options) { o.tracer = tr } }

// WithRestoreSnapshot makes a server adopt the game world (client avatars
// and map objects) from a snapshot blob before it starts serving, so no
// client can join into a window a later restore would wipe. Topology is
// not restored — the server registers freshly (servers only).
func WithRestoreSnapshot(blob []byte) Option {
	return func(o *options) { o.restore = append([]byte(nil), blob...) }
}

// RunSimulation executes one deterministic simulation and returns its
// result (series, latencies, topology events). It is how the bundled
// experiments regenerate the paper's figures.
func RunSimulation(cfg SimulationConfig) (*SimulationResult, error) {
	s, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// NewSimulation builds a simulation without running it, for callers that
// want to inspect cluster state afterwards.
func NewSimulation(cfg SimulationConfig) (*sim.Sim, error) { return sim.New(cfg) }

// SimulationSnapshot is a complete captured simulation state, restorable
// into a run that continues byte-identically (see internal/snapshot).
type SimulationSnapshot = snapshot.Snapshot

// CaptureSimulation freezes a simulation built with NewSimulation (between
// steps, or after it finished) into a versioned snapshot.
func CaptureSimulation(s *sim.Sim) (*SimulationSnapshot, error) { return snapshot.Capture(s) }

// RestoreSimulation rebuilds a simulation from a snapshot; the restored
// run's Result.Fingerprint matches the uninterrupted run's byte for byte.
func RestoreSimulation(snap *SimulationSnapshot) (*sim.Sim, error) { return snapshot.Restore(snap) }

// internal glue shared by the constructors in cluster.go.
func (o options) coordinatorConfig() (coordinator.Config, error) {
	pol, err := policy.New(o.policy)
	if err != nil {
		return coordinator.Config{}, err
	}
	return coordinator.Config{
		World:          o.world,
		ExtraRadii:     o.extraRadii,
		Static:         o.static,
		HeartbeatEvery: o.heartbeat,
		LeaseMisses:    o.leaseMisses,
		Policy:         pol,
	}, nil
}

// clientConfig assembles a gameclient.Config.
func clientConfig(idv ClientID, pos Point) gameclient.Config {
	return gameclient.Config{ID: idv, Pos: pos}
}
