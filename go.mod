module matrix

go 1.24
