package matrix

import (
	"io"
	"time"

	"matrix/internal/host"
)

// Coordinator is a running Matrix Coordinator.
type Coordinator struct {
	h *host.CoordinatorHost
}

// ServeCoordinator starts the MC. Servers dial Addr() to register; the
// first registered server owns the whole world, later ones join the spare
// pool (unless WithStaticPartitions pins them).
func ServeCoordinator(opts ...Option) (*Coordinator, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	cfg, err := o.coordinatorConfig()
	if err != nil {
		return nil, err
	}
	h, err := host.ServeCoordinator(o.network, o.addr, cfg, o.logger)
	if err != nil {
		return nil, err
	}
	if o.tracer != nil {
		h.SetTracer(o.tracer)
	}
	return &Coordinator{h: h}, nil
}

// Addr returns the address servers dial to register.
func (c *Coordinator) Addr() string { return c.h.Addr() }

// ActiveServers lists the servers currently owning partitions.
func (c *Coordinator) ActiveServers() []ServerID { return c.h.MC().ActiveServers() }

// Splits returns the number of granted splits so far.
func (c *Coordinator) Splits() int { return c.h.MC().Splits() }

// Reclaims returns the number of granted reclamations so far.
func (c *Coordinator) Reclaims() int { return c.h.MC().Reclaims() }

// Deaths returns the number of servers declared dead so far (health
// tracking must be on — see WithHeartbeatEvery).
func (c *Coordinator) Deaths() int { return c.h.MC().Deaths() }

// Adoptions returns the number of dead-server regions re-homed onto warm
// spares so far.
func (c *Coordinator) Adoptions() int { return c.h.MC().Adoptions() }

// Drains returns the number of operator drains granted so far.
func (c *Coordinator) Drains() int { return c.h.MC().Drains() }

// Parked lists regions whose owners died with no spare available; they are
// adopted the moment a spare registers.
func (c *Coordinator) Parked() []ServerID { return c.h.MC().Parked() }

// Drain migrates target's partition off it — to a warm spare via live
// handoff, or folded into its parent when the pool is empty — and returns
// the server to the spare pool, or retires it when exit is set. Requires
// health tracking (WithHeartbeatEvery).
func (c *Coordinator) Drain(target ServerID, exit bool) error {
	return c.h.AdminDrain(target, exit)
}

// Partitions snapshots the current world partitioning as (server, rect)
// pairs.
func (c *Coordinator) Partitions() map[ServerID]Rect {
	out := make(map[ServerID]Rect)
	for _, p := range c.h.MC().Partitions() {
		out[p.Owner] = p.Bounds
	}
	return out
}

// ServeMetrics starts a Prometheus-format /metrics HTTP endpoint for the
// coordinator on addr (host:0 picks an ephemeral port). It returns the
// bound address and a closer that stops the endpoint.
func (c *Coordinator) ServeMetrics(addr string) (string, io.Closer, error) {
	return c.h.ServeMetrics(addr)
}

// Close shuts the coordinator down.
func (c *Coordinator) Close() error { return c.h.Close() }

// Server is a running Matrix server with its co-located game server.
type Server struct {
	h *host.ServerHost
}

// StartServer registers a new server with the coordinator at mcAddr and
// starts serving game clients and peer Matrix servers.
func StartServer(mcAddr string, opts ...Option) (*Server, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	h, err := host.StartServer(host.ServerConfig{
		Network:         o.network,
		Coordinator:     mcAddr,
		ListenAddr:      o.addr,
		Radius:          o.radius,
		Load:            o.loadPolicy,
		Policy:          o.policy,
		TickInterval:    o.tick,
		ServiceRate:     o.serviceRate,
		MaxQueue:        o.maxQueue,
		ReportInterval:  o.report,
		Logger:          o.logger,
		Restore:         o.restore,
		Middleware:      o.mw,
		HeartbeatEvery:  o.heartbeat,
		CheckpointEvery: o.checkpoint,
		Tracer:          o.tracer,
	})
	if err != nil {
		return nil, err
	}
	return &Server{h: h}, nil
}

// ID returns the server's identity, assigned by the coordinator.
func (s *Server) ID() ServerID { return s.h.ID() }

// Addr returns the address game clients dial.
func (s *Server) Addr() string { return s.h.Addr() }

// Bounds returns the owned partition (empty while a spare).
func (s *Server) Bounds() Rect { return s.h.Core().Bounds() }

// Active reports whether the server currently owns a partition.
func (s *Server) Active() bool { return s.h.Core().Active() }

// ClientCount returns the number of connected game clients.
func (s *Server) ClientCount() int { return s.h.Game().ClientCount() }

// QueueLen returns the receive-queue length (the paper's load signal).
func (s *Server) QueueLen() int { return s.h.Game().QueueLen() }

// ServeMetrics starts a Prometheus-format /metrics HTTP endpoint for the
// server on addr (host:0 picks an ephemeral port), exposing the gauges and
// the middleware chain's verdict counters. It returns the bound address
// and a closer that stops the endpoint.
func (s *Server) ServeMetrics(addr string) (string, io.Closer, error) {
	return s.h.ServeMetrics(addr)
}

// Drain asks the coordinator to take this server out of rotation: its
// partition migrates to a spare (or folds into its parent), clients are
// redirected away, and the call returns once the server is empty. With
// exit the server is retired from the pool instead of becoming a spare.
func (s *Server) Drain(exit bool, timeout time.Duration) error { return s.h.Drain(exit, timeout) }

// Drained is closed once a requested drain has fully evacuated the server.
func (s *Server) Drained() <-chan struct{} { return s.h.Drained() }

// Snapshot dumps the node's complete state (Matrix server + game server) as
// a versioned blob. Any peer can also fetch it over the wire by sending a
// SnapshotRequest frame; matrix-server's -dump flag does exactly that.
func (s *Server) Snapshot() ([]byte, error) { return s.h.Snapshot() }

// RestoreSnapshot loads a Snapshot blob into the node, overwriting its
// state — matrix-server's boot-time -restore flag.
func (s *Server) RestoreSnapshot(blob []byte) error { return s.h.RestoreSnapshot(blob) }

// Close shuts the server down.
func (s *Server) Close() error { return s.h.Close() }

// Client is a connected game client.
type Client struct {
	h *host.ClientHost
}

// Dial joins the game at serverAddr as clientID standing at pos. It returns
// once the server's welcome arrives. The client transparently follows
// Matrix redirects afterwards.
func Dial(serverAddr string, clientID ClientID, pos Point, opts ...Option) (*Client, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	h, err := host.DialClient(host.ClientConfig{
		Network:       o.network,
		ServerAddr:    serverAddr,
		Client:        clientConfig(clientID, pos),
		Logger:        o.logger,
		AuthToken:     o.authToken,
		FallbackAddrs: o.fallbacks,
		RedialEvery:   o.redialEvery,
	})
	if err != nil {
		return nil, err
	}
	return &Client{h: h}, nil
}

// ID returns the client's callsign.
func (c *Client) ID() ClientID { return c.h.Client().ID() }

// Pos returns the client's current position.
func (c *Client) Pos() Point { return c.h.Client().Pos() }

// Server returns the game server currently responsible for this client.
func (c *Client) Server() ServerID { return c.h.Client().Server() }

// Move walks the client to dest, notifying the game.
func (c *Client) Move(dest Point) error {
	return c.h.Send(c.h.Client().MakeMove(dest))
}

// Act performs a non-movement action (shot, interaction) landing at dest.
func (c *Client) Act(kind UpdateKind, dest Point) error {
	return c.h.Send(c.h.Client().MakeAction(kind, dest))
}

// Stats summarizes the client's traffic counters.
func (c *Client) Stats() ClientStats {
	st := c.h.Client().Stats()
	return ClientStats{
		Sent:     st.Sent,
		Received: st.Received,
		Echoes:   st.EchoCount,
		Switches: st.Switches,
	}
}

// Latencies returns the measured action→echo response times.
func (c *Client) Latencies() []time.Duration { return c.h.Client().Latencies() }

// Close disconnects the client.
func (c *Client) Close() error { return c.h.Close() }

// ClientStats summarizes a client's traffic.
type ClientStats struct {
	Sent     uint64
	Received uint64
	Echoes   uint64
	Switches uint64
}
