// Rpgworld: a Daimonin-style role-playing world on Matrix, demonstrating
// the per-class visibility radii ("the Matrix API does allow game servers
// to specify different visibility radii for exceptions").
//
// Villagers chat in town while adventurers roam. Chat carries a larger
// visibility radius than movement, so town gossip reaches players that
// cannot see each other move. The simulation also schedules a market-day
// crowd to show Matrix absorbing an RPG-style social hotspot.
//
//	go run ./examples/rpgworld
package main

import (
	"fmt"
	"log"

	"matrix"
)

func main() {
	world := matrix.R(0, 0, 800, 800)
	town := matrix.Pt(600, 200)

	policy := matrix.DefaultLoadPolicy()
	policy.OverloadClients = 120
	policy.UnderloadClients = 60

	// Market day: 250 villagers flock to town at t=15, leave from t=70.
	script := matrix.Script{
		{At: 15, Kind: matrix.EventJoin, Count: 250, Center: town, Spread: 90, Tag: "market"},
		{At: 70, Kind: matrix.EventLeave, Count: 125, Tag: "market"},
		{At: 90, Kind: matrix.EventLeave, Count: 125, Tag: "market"},
	}

	res, err := matrix.RunSimulation(matrix.SimulationConfig{
		Profile:            matrix.DaimoninProfile(),
		World:              world,
		Seed:               7,
		DurationSeconds:    120,
		MaxServers:         5,
		ServiceRatePerTick: 150,
		BasePopulation:     80,
		Script:             script,
		LoadPolicy:         policy,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== market day in the RPG world ==")
	active := res.Metrics.Series("servers/active")
	for t := 0.0; t <= 120; t += 15 {
		fmt.Printf("t=%3.0fs servers=%0.f", t, active.At(t))
		for _, s := range res.Metrics.SeriesByPrefix("clients/") {
			if v := s.At(t); v > 0 {
				fmt.Printf("  %s:%0.f", s.Name()[len("clients/"):], v)
			}
		}
		fmt.Println()
	}
	fmt.Printf("\nsplits/reclaims: ")
	for _, e := range res.Events {
		fmt.Printf("%s@%0.fs ", e.Kind, e.Time)
	}
	fmt.Println()
	fmt.Printf("chat+move deliveries: %d; response p95: %.0fms; dropped: %d\n",
		res.DeliveredUpdates, res.Latency.Quantile(0.95), res.DroppedPackets)
	fmt.Printf("peak servers during market day: %d (back to %d after)\n",
		res.PeakServers, res.FinalServers)
}
