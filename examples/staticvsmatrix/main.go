// Staticvsmatrix: the paper's §4.2 comparison, runnable.
//
// The same hotspot workload hits (a) a statically partitioned 4-server
// deployment — the Everquest-era strategy — and (b) adaptive Matrix with a
// pool of 10. Static partitioning saturates and drops packets for as long
// as the hotspot lasts; Matrix deploys extra servers and recovers.
//
//	go run ./examples/staticvsmatrix
package main

import (
	"fmt"
	"log"

	"matrix"
)

func main() {
	world := matrix.R(0, 0, 1000, 1000)
	script := matrix.Script{
		{At: 10, Kind: matrix.EventJoin, Count: 600, Center: matrix.Pt(800, 300), Spread: 120, Tag: "hot"},
	}
	policy := matrix.DefaultLoadPolicy()
	policy.OverloadQueue = 1500

	base := matrix.SimulationConfig{
		Profile:            matrix.BzflagProfile(),
		World:              world,
		Seed:               4,
		DurationSeconds:    120,
		ServiceRatePerTick: 250,
		MaxQueue:           2000,
		BasePopulation:     100,
		Script:             script,
		LoadPolicy:         policy,
	}

	tiles, err := matrix.StaticGrid(world, 4)
	if err != nil {
		log.Fatal(err)
	}
	staticCfg := base
	staticCfg.Static = tiles
	staticCfg.MaxServers = 4

	matrixCfg := base
	matrixCfg.MaxServers = 10

	fmt.Println("running static baseline (4 fixed servers)...")
	staticRes, err := matrix.RunSimulation(staticCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running adaptive Matrix (pool of 10)...")
	matrixRes, err := matrix.RunSimulation(matrixCfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s\n", "", "static", "matrix")
	row := func(name string, a, b any) { fmt.Printf("%-22s %12v %12v\n", name, a, b) }
	row("servers used", staticRes.PeakServers, matrixRes.PeakServers)
	row("dropped packets", staticRes.DroppedPackets, matrixRes.DroppedPackets)
	row("p95 latency (ms)", int(staticRes.Latency.Quantile(0.95)), int(matrixRes.Latency.Quantile(0.95)))
	row("p99 latency (ms)", int(staticRes.Latency.Quantile(0.99)), int(matrixRes.Latency.Quantile(0.99)))
	row("splits", len(staticRes.Events), len(matrixRes.Events))

	// "Failure" means drops continue at steady state.
	lastWindow := func(r *matrix.SimulationResult) float64 {
		s := r.Metrics.Series("drops/total")
		return s.At(120) - s.At(90)
	}
	row("drops in final 30s", int(lastWindow(staticRes)), int(lastWindow(matrixRes)))
	fmt.Println("\nstatic partitioning keeps failing while the hotspot lasts;")
	fmt.Println("Matrix absorbs it with extra servers and recovers completely.")
}
