// Hotspot: the paper's Figure 2 experiment end-to-end.
//
// A 600-client BzFlag hotspot lands on a one-server world at t=10s; Matrix
// splits recursively, spreads the load, and reclaims the extra servers as
// the crowd drains — then handles a second hotspot elsewhere. The program
// prints both Figure 2 panels (clients per server and queue lengths over
// time) plus the split/reclaim timeline.
//
//	go run ./examples/hotspot            # full 300s scenario (~30s wall)
//	go run ./examples/hotspot -short     # first hotspot only (~8s wall)
package main

import (
	"flag"
	"fmt"
	"log"

	"matrix"
)

func main() {
	short := flag.Bool("short", false, "run only the first hotspot (60 simulated seconds)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	world := matrix.R(0, 0, 1000, 1000)
	policy := matrix.DefaultLoadPolicy() // the paper's 300/150 thresholds
	policy.OverloadQueue = 3000

	cfg := matrix.SimulationConfig{
		Profile:            matrix.BzflagProfile(),
		World:              world,
		Seed:               *seed,
		DurationSeconds:    300,
		MaxServers:         8,
		ServiceRatePerTick: 300,
		BasePopulation:     100,
		Script:             matrix.Figure2Script(world),
		LoadPolicy:         policy,
		SampleEverySeconds: 5,
	}
	if *short {
		cfg.DurationSeconds = 60
	}

	res, err := matrix.RunSimulation(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== clients per server (Figure 2a) ==")
	printSeries(res, "clients/", cfg.DurationSeconds)
	fmt.Println("\n== receive-queue length (Figure 2b) ==")
	printSeries(res, "queue/", cfg.DurationSeconds)

	fmt.Println("\n== topology events ==")
	for _, e := range res.Events {
		fmt.Printf("  t=%3.0fs %-8s %v\n", e.Time, e.Kind, e.Server)
	}
	fmt.Printf("\npeak servers %d, final %d; %d redirects; %d dropped packets\n",
		res.PeakServers, res.FinalServers, res.Redirects, res.DroppedPackets)
	fmt.Printf("response latency: p50=%.0fms p95=%.0fms p99=%.0fms\n",
		res.Latency.Quantile(0.50), res.Latency.Quantile(0.95), res.Latency.Quantile(0.99))
}

// printSeries renders one Figure 2 panel as a table.
func printSeries(res *matrix.SimulationResult, prefix string, duration float64) {
	series := res.Metrics.SeriesByPrefix(prefix)
	fmt.Printf("%-6s", "t(s)")
	for _, s := range series {
		fmt.Printf("%12s", s.Name()[len(prefix):])
	}
	fmt.Println()
	for t := 0.0; t <= duration; t += 20 {
		fmt.Printf("%-6.0f", t)
		for _, s := range series {
			fmt.Printf("%12.0f", s.At(t))
		}
		fmt.Println()
	}
}
