// Bzflag: a live tank-battle workload against a real (in-process) Matrix
// cluster — the networked counterpart of the simulation examples.
//
// Forty tanks roam a battlefield served by up to three servers; the battle
// drifts toward one corner until Matrix splits the map, and the program
// shows the cluster reshaping itself around the fight in real time.
//
//	go run ./examples/bzflag
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"matrix"
	"matrix/internal/game"
)

const tanks = 40

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := matrix.NewMemNetwork()
	world := matrix.R(0, 0, 1000, 1000)

	mc, err := matrix.ServeCoordinator(matrix.WithNetwork(nw), matrix.WithWorld(world))
	if err != nil {
		return err
	}
	defer mc.Close()

	// Aggressive thresholds so 40 tanks are enough to force splits.
	policy := matrix.DefaultLoadPolicy()
	policy.OverloadClients = 25
	policy.UnderloadClients = 10
	policy.SplitCooldown = 500 * time.Millisecond

	var servers []*matrix.Server
	for i := 0; i < 3; i++ {
		srv, err := matrix.StartServer(mc.Addr(),
			matrix.WithNetwork(nw),
			matrix.WithRadius(40),
			matrix.WithLoadPolicy(policy),
			matrix.WithTickInterval(2*time.Millisecond),
			matrix.WithReportInterval(200*time.Millisecond),
		)
		if err != nil {
			return err
		}
		defer srv.Close()
		servers = append(servers, srv)
	}

	// Tanks spawn across the map, then converge on the south-east corner.
	profile := matrix.BzflagProfile()
	battle := matrix.Pt(800, 200)
	rnd := rand.New(rand.NewSource(42))
	type tank struct {
		cl    *matrix.Client
		mover *game.Mover
	}
	var fleet []tank
	for i := 0; i < tanks; i++ {
		pos := matrix.Pt(rnd.Float64()*1000, rnd.Float64()*1000)
		cl, err := matrix.Dial(servers[0].Addr(), matrix.ClientID(i+1), pos, matrix.WithNetwork(nw))
		if err != nil {
			return err
		}
		defer cl.Close()
		mover := game.NewMover(profile, world, int64(i)*31)
		mover.Attract(battle, 120)
		fleet = append(fleet, tank{cl: cl, mover: mover})
	}
	fmt.Printf("%d tanks rolling toward (%.0f,%.0f)\n", tanks, battle.X, battle.Y)

	// Drive the battle for six seconds of wall time.
	const dt = 50 * time.Millisecond
	ticker := time.NewTicker(dt)
	defer ticker.Stop()
	start := time.Now()
	for time.Since(start) < 6*time.Second {
		<-ticker.C
		for _, tk := range fleet {
			pos := tk.cl.Pos()
			// Drive and occasionally fire at a nearby point.
			if err := tk.cl.Move(tk.mover.Step(pos, dt.Seconds())); err != nil {
				continue // mid-redirect; next tick retries
			}
			if rnd.Intn(4) == 0 {
				ang := rnd.Float64() * 2 * math.Pi
				target := matrix.Pt(pos.X+30*math.Cos(ang), pos.Y+30*math.Sin(ang))
				_ = tk.cl.Act(matrix.KindAction, world.Clamp(target))
			}
		}
	}

	// Report what Matrix did underneath the battle.
	fmt.Printf("splits performed: %d\n", mc.Splits())
	for sid, bounds := range mc.Partitions() {
		fmt.Printf("  %v owns %v\n", sid, bounds)
	}
	var switches, echoes uint64
	for _, tk := range fleet {
		st := tk.cl.Stats()
		switches += st.Switches
		echoes += st.Echoes
	}
	fmt.Printf("tank echoes: %d, transparent server switches: %d\n", echoes, switches)
	if mc.Splits() == 0 {
		fmt.Println("note: no split this run — raise tank count or lower thresholds")
	}
	return nil
}
