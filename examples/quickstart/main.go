// Quickstart: a complete Matrix deployment in one process.
//
// It starts a coordinator, two servers (one active, one spare in the pool)
// and two game clients over the in-memory transport, exchanges a few
// updates, and prints what each side saw. Swap NewMemNetwork for TCP() and
// the same code runs across machines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"matrix"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	nw := matrix.NewMemNetwork()

	// 1. The Matrix Coordinator owns the world partitioning.
	mc, err := matrix.ServeCoordinator(
		matrix.WithNetwork(nw),
		matrix.WithWorld(matrix.R(0, 0, 1000, 1000)),
	)
	if err != nil {
		return err
	}
	defer mc.Close()

	// 2. Two servers register: the first owns the whole world, the second
	// waits in the spare pool until a split needs it.
	srv1, err := matrix.StartServer(mc.Addr(),
		matrix.WithNetwork(nw),
		matrix.WithRadius(40),
		matrix.WithTickInterval(2*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer srv1.Close()
	srv2, err := matrix.StartServer(mc.Addr(),
		matrix.WithNetwork(nw),
		matrix.WithRadius(40),
		matrix.WithTickInterval(2*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer srv2.Close()
	fmt.Printf("server %v owns %v; server %v is a spare (active=%v)\n",
		srv1.ID(), srv1.Bounds(), srv2.ID(), srv2.Active())

	// 3. Two players join near each other.
	alice, err := matrix.Dial(srv1.Addr(), 1, matrix.Pt(100, 100), matrix.WithNetwork(nw))
	if err != nil {
		return err
	}
	defer alice.Close()
	bob, err := matrix.Dial(srv1.Addr(), 2, matrix.Pt(110, 100), matrix.WithNetwork(nw))
	if err != nil {
		return err
	}
	defer bob.Close()

	// 4. Alice fires; both tanks are within the 40-unit zone of
	// visibility, so Bob sees it and Alice gets her echo.
	if err := alice.Act(matrix.KindAction, matrix.Pt(105, 100)); err != nil {
		return err
	}
	if err := alice.Move(matrix.Pt(102, 101)); err != nil {
		return err
	}
	waitUntil(func() bool { return bob.Stats().Received >= 1 && alice.Stats().Echoes >= 1 })

	fmt.Printf("alice: sent=%d echoes=%d; bob: received=%d\n",
		alice.Stats().Sent, alice.Stats().Echoes, bob.Stats().Received)
	if lats := alice.Latencies(); len(lats) > 0 {
		fmt.Printf("alice's first response latency: %v\n", lats[0])
	}
	fmt.Printf("cluster: %d active server(s), %d split(s)\n",
		len(mc.ActiveServers()), mc.Splits())
	return nil
}

// waitUntil polls a condition for up to five seconds.
func waitUntil(cond func() bool) {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && !cond() {
		time.Sleep(5 * time.Millisecond)
	}
}
