package matrix_test

import (
	"fmt"

	"matrix"
)

// ExampleRunSimulation runs a small deterministic simulation: a hotspot
// of 80 clients overloads the single initial server, Matrix splits, and
// the run reports the resulting topology. Same seed, same output, every
// time.
func ExampleRunSimulation() {
	world := matrix.R(0, 0, 1000, 1000)
	policy := matrix.DefaultLoadPolicy()
	policy.OverloadClients = 40
	policy.UnderloadClients = 20

	res, err := matrix.RunSimulation(matrix.SimulationConfig{
		Profile:         matrix.BzflagProfile(),
		World:           world,
		Seed:            7,
		DurationSeconds: 30,
		MaxServers:      4,
		BasePopulation:  10,
		LoadPolicy:      policy,
		Script: matrix.Script{
			{At: 5, Kind: matrix.EventJoin, Count: 80, Center: matrix.Pt(750, 250), Spread: 80, Tag: "hot"},
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("peak servers:", res.PeakServers)
	fmt.Println("dropped:", res.DroppedPackets)
	fmt.Println("topology events:", len(res.Events))
	// Output:
	// peak servers: 4
	// dropped: 0
	// topology events: 3
}

// ExampleServeCoordinator brings up a coordinator on the in-memory
// transport (swap in matrix.TCP() — the default — for a live cluster)
// and registers one server against it.
func ExampleServeCoordinator() {
	nw := matrix.NewMemNetwork()
	mc, err := matrix.ServeCoordinator(
		matrix.WithNetwork(nw),
		matrix.WithWorld(matrix.R(0, 0, 1000, 1000)),
	)
	if err != nil {
		panic(err)
	}
	defer mc.Close()

	srv, err := matrix.StartServer(mc.Addr(), matrix.WithNetwork(nw))
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	fmt.Println("active servers:", len(mc.ActiveServers()))
	fmt.Println("splits so far:", mc.Splits())
	// Output:
	// active servers: 1
	// splits so far: 0
}

// ExampleStartServer starts a server fleet: the first registered server
// owns the whole world, later ones wait in the spare pool until a split
// assigns them a partition.
func ExampleStartServer() {
	nw := matrix.NewMemNetwork()
	mc, err := matrix.ServeCoordinator(
		matrix.WithNetwork(nw),
		matrix.WithWorld(matrix.R(0, 0, 1000, 1000)),
	)
	if err != nil {
		panic(err)
	}
	defer mc.Close()

	root, err := matrix.StartServer(mc.Addr(), matrix.WithNetwork(nw), matrix.WithRadius(40))
	if err != nil {
		panic(err)
	}
	defer root.Close()
	spare, err := matrix.StartServer(mc.Addr(), matrix.WithNetwork(nw), matrix.WithRadius(40))
	if err != nil {
		panic(err)
	}
	defer spare.Close()

	fmt.Println("root owns a partition:", root.Active())
	fmt.Println("spare owns a partition:", spare.Active())
	// Output:
	// root owns a partition: true
	// spare owns a partition: false
}

// ExampleDial joins a game client to a running server and sends a move.
// Dial returns once the server's welcome arrives; afterwards the client
// transparently follows Matrix redirects.
func ExampleDial() {
	nw := matrix.NewMemNetwork()
	mc, err := matrix.ServeCoordinator(
		matrix.WithNetwork(nw),
		matrix.WithWorld(matrix.R(0, 0, 1000, 1000)),
	)
	if err != nil {
		panic(err)
	}
	defer mc.Close()
	srv, err := matrix.StartServer(mc.Addr(), matrix.WithNetwork(nw))
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	cl, err := matrix.Dial(srv.Addr(), 1, matrix.Pt(100, 100), matrix.WithNetwork(nw))
	if err != nil {
		panic(err)
	}
	defer cl.Close()

	if err := cl.Move(matrix.Pt(105, 100)); err != nil {
		panic(err)
	}
	fmt.Println("connected to:", cl.Server())
	// Output:
	// connected to: server-1
}
